(* Fault injection: produce a structurally similar but (usually) not
   equivalent variant of a circuit.  Used to test that the checkers reject
   broken "optimizations" — the negative direction of verification. *)

type fault =
  | Flip_fanin_polarity of int (* and-node id *)
  | And_to_or of int (* and-node id *)
  | Flip_latch_init of int (* latch index *)
  | Swap_latch_nexts of int * int
  | Stuck_output of string (* output forced to constant *)

let pp_fault ppf = function
  | Flip_fanin_polarity id -> Format.fprintf ppf "flip fanin polarity of and-%d" id
  | And_to_or id -> Format.fprintf ppf "replace and-%d by or" id
  | Flip_latch_init i -> Format.fprintf ppf "flip init of latch %d" i
  | Swap_latch_nexts (i, j) -> Format.fprintf ppf "swap next-states of latches %d/%d" i j
  | Stuck_output name -> Format.fprintf ppf "stick output %s at 0" name

let and_ids aig =
  let acc = ref [] in
  for id = Aig.num_nodes aig - 1 downto 0 do
    match Aig.node aig id with
    | Aig.And _ -> acc := id :: !acc
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
  done;
  !acc

let pick_fault ~seed aig =
  let rng = Random.State.make [| seed; 0xbad |] in
  let ands = and_ids aig in
  let n_latches = Aig.num_latches aig in
  let candidates =
    List.concat
      [ (match ands with
        | [] -> []
        | _ ->
          let pick () = List.nth ands (Random.State.int rng (List.length ands)) in
          [ Flip_fanin_polarity (pick ()); And_to_or (pick ()) ]);
        (if n_latches > 0 then [ Flip_latch_init (Random.State.int rng n_latches) ] else []);
        (if n_latches > 1 then
           let i = Random.State.int rng n_latches in
           let j = (i + 1 + Random.State.int rng (n_latches - 1)) mod n_latches in
           [ Swap_latch_nexts (i, j) ]
         else []);
        (match Aig.pos aig with
        | [] -> []
        | pos -> [ Stuck_output (fst (List.nth pos (Random.State.int rng (List.length pos)))) ]);
      ]
  in
  match candidates with
  | [] -> None
  | _ -> Some (List.nth candidates (Random.State.int rng (List.length candidates)))

(* Apply a fault by rebuilding the AIG. *)
let apply aig fault =
  let dst = Aig.create () in
  let n = Aig.num_nodes aig in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let n_latches = Aig.num_latches aig in
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis aig)) in
  let latch_lits =
    Array.init n_latches (fun i ->
        let init =
          match fault with
          | Flip_latch_init j when j = i -> not (Aig.latch_init aig i)
          | _ -> Aig.latch_init aig i
        in
        Aig.add_latch dst ~init)
  in
  let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
  for id = 0 to n - 1 do
    map.(id) <-
      (match Aig.node aig id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i -> latch_lits.(i)
      | Aig.And (a, b) -> (
        match fault with
        | Flip_fanin_polarity fid when fid = id ->
          Aig.mk_and dst (Aig.lit_not (tr_lit a)) (tr_lit b)
        | And_to_or fid when fid = id -> Aig.mk_or dst (tr_lit a) (tr_lit b)
        | _ -> Aig.mk_and dst (tr_lit a) (tr_lit b)))
  done;
  for i = 0 to n_latches - 1 do
    let src_idx =
      match fault with
      | Swap_latch_nexts (a, b) when i = a -> b
      | Swap_latch_nexts (a, b) when i = b -> a
      | _ -> i
    in
    Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next aig src_idx))
  done;
  List.iter
    (fun (name, l) ->
      let l' =
        match fault with
        | Stuck_output n when n = name -> Aig.lit_false
        | _ -> tr_lit l
      in
      Aig.add_po dst name l')
    (Aig.pos aig);
  dst

(* Inject a random fault; retries a few seeds until the mutant differs from
   the original on bounded random simulation (so tests get observable
   faults), returning [None] if none of the attempts is observable. *)
let observable_mutant ?(attempts = 10) ~seed aig =
  let differs mutant =
    let n_pis = Aig.num_pis aig in
    let frames = Aig.Sim.random_frames ~seed:(seed + 900) ~n_pis ~n_frames:48 in
    let o1, _ = Aig.Sim.run aig frames and o2, _ = Aig.Sim.run mutant frames in
    o1 <> o2
  in
  let rec go k =
    if k = 0 then None
    else
      match pick_fault ~seed:(seed + k) aig with
      | None -> None
      | Some fault ->
        let mutant = apply aig fault in
        if differs mutant then Some (mutant, fault) else go (k - 1)
  in
  go attempts
