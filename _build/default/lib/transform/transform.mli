(** Sequential synthesis transformations.

    The passes that produce the "retimed and optimized" implementations
    the paper verifies: retiming, cut-based rewriting, fraiging and latch
    sweeping all preserve sequential behaviour (each is property-tested
    against simulation and exhaustive product exploration); {!Mutate}
    deliberately breaks it for negative testing. *)

(** Register moves across gates (the transformations of Leiserson/Saxe as
    applied in the paper's benchmark flow). *)
module Retime : sig
  val forward_step : ?max_moves:int -> Aig.t -> Aig.t option
  (** One pass of forward moves: every AND whose fanins are both latch
      outputs becomes a latch over the AND of the data inputs, with the
      initial value pushed through the gate.  [None] when no move
      applies. *)

  val forward : ?max_steps:int -> Aig.t -> Aig.t
  (** Iterate {!forward_step}. *)

  val backward_step : ?max_moves:int -> Aig.t -> Aig.t option
  (** One pass of backward moves: a latch whose next-state is an AND is
      split into latches on the AND's fanins; initial values are justified
      by a preimage of the old initial value. *)

  val backward : ?max_steps:int -> Aig.t -> Aig.t
end

(** Combinational restructuring (the kerneling / script.rugged stand-in). *)
module Opt : sig
  val rewrite : ?seed:int -> ?p:float -> ?k:int -> Aig.t -> Aig.t
  (** Cut-based resynthesis: with probability [p] per node, compute the
      truth table of a [k]-input cut and rebuild the cone by Shannon
      expansion in a seeded random variable order. *)

  val latch_sweep : Aig.t -> Aig.t
  (** Replace registers that provably stay at their initial value by
      constants (greatest fixed point of a stuck-at analysis). *)

  val dedup_latches : Aig.t -> Aig.t
  (** Merge latches with identical next-state literal and initial value. *)
end

(** Fraiging: SAT sweeping of combinationally equivalent nodes. *)
module Fraig : sig
  type stats = {
    mutable sat_calls : int;
    mutable merged : int;
    mutable refuted : int;
    mutable rounds : int;
  }

  val sweep : ?seed:int -> ?max_rounds:int -> ?n_words:int -> Aig.t -> Aig.t * stats
  (** Partition nodes by random-simulation signature (normalized for
      polarity), prove or refute candidates against class representatives
      with SAT, feed counterexamples back as patterns, and rebuild with
      the proven merges applied. *)
end

(** Fault injection for negative tests. *)
module Mutate : sig
  type fault =
    | Flip_fanin_polarity of int
    | And_to_or of int
    | Flip_latch_init of int
    | Swap_latch_nexts of int * int
    | Stuck_output of string

  val pp_fault : Format.formatter -> fault -> unit

  val pick_fault : seed:int -> Aig.t -> fault option
  (** A random applicable fault, or [None] for degenerate circuits. *)

  val apply : Aig.t -> fault -> Aig.t

  val observable_mutant : ?attempts:int -> seed:int -> Aig.t -> (Aig.t * fault) option
  (** A mutant that provably differs from the original on bounded random
      simulation (so tests exercise detectable faults). *)
end
