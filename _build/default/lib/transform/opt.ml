(* Combinational restructuring of AIGs, standing in for the kerneling +
   script.rugged optimizations applied to the paper's benchmark
   implementations.  All passes preserve the sequential behaviour; they
   only perturb (and usually shrink) the combinational structure:

   - [rewrite]: cut-based resynthesis — compute the truth table of a
     4-input cut and rebuild the cone by Shannon expansion in a (seeded)
     permuted variable order;
   - [latch_sweep]: constant propagation through latches (stuck-at
     registers are replaced by constants);
   - [dedup_latches]: merge latches with identical next-state function and
     initial value. *)

(* --- cut-based rewriting -------------------------------------------------- *)

(* A small structural cut: expand the deepest leaf until the leaf set would
   exceed [k]; returns leaves (node ids) of the cone of [id]. *)
let structural_cut aig ~k id =
  let module IS = Set.Make (Int) in
  let expandable n =
    match Aig.node aig n with Aig.And _ -> true | Aig.Const | Aig.Pi _ | Aig.Latch _ -> false
  in
  let rec grow leaves =
    (* expand the largest expandable leaf (deepest by id) *)
    match IS.max_elt_opt (IS.filter expandable leaves) with
    | None -> leaves
    | Some n -> (
      match Aig.node aig n with
      | Aig.And (a, b) ->
        let next =
          IS.add (Aig.node_of_lit a) (IS.add (Aig.node_of_lit b) (IS.remove n leaves))
        in
        if IS.cardinal next > k then leaves else grow next
      | Aig.Const | Aig.Pi _ | Aig.Latch _ -> assert false)
  in
  IS.elements (grow (IS.singleton id))

(* Truth table of node [id] over the cut [leaves] (up to 6 leaves, packed
   into an int64: bit p = value under assignment p). *)
let cone_truth_table aig ~leaves id =
  let n = List.length leaves in
  assert (n <= 6);
  let words = Hashtbl.create 32 in
  List.iteri
    (fun i leaf ->
      (* the i-th leaf's column pattern over 2^n assignments *)
      let w = ref 0L in
      for p = 0 to (1 lsl n) - 1 do
        if p land (1 lsl i) <> 0 then w := Int64.logor !w (Int64.shift_left 1L p)
      done;
      Hashtbl.replace words leaf !w)
    leaves;
  let rec eval_node nid =
    match Hashtbl.find_opt words nid with
    | Some w -> w
    | None ->
      let w =
        match Aig.node aig nid with
        | Aig.Const -> 0L
        | Aig.Pi _ | Aig.Latch _ ->
          (* a non-leaf terminal can only appear if it IS a leaf *)
          assert false
        | Aig.And (a, b) -> Int64.logand (eval_lit a) (eval_lit b)
      in
      Hashtbl.replace words nid w;
      w
  and eval_lit l =
    let w = eval_node (Aig.node_of_lit l) in
    if Aig.lit_is_compl l then Int64.lognot w else w
  in
  eval_node id

(* Rebuild a function given by truth table [tt] over [vars] (destination
   literals) by Shannon expansion following [order] (a permutation of
   variable positions). *)
let rec shannon dst ~tt ~nvars ~vars ~order ~mask =
  if Int64.logand tt mask = 0L then Aig.lit_false
  else if Int64.logand (Int64.lognot tt) mask = 0L then Aig.lit_true
  else
    match order with
    | [] -> assert false
    | v :: order_rest ->
      let col =
        (* pattern of variable v over 2^nvars assignments *)
        let w = ref 0L in
        for p = 0 to (1 lsl nvars) - 1 do
          if p land (1 lsl v) <> 0 then w := Int64.logor !w (Int64.shift_left 1L p)
        done;
        !w
      in
      let hi = shannon dst ~tt ~nvars ~vars ~order:order_rest ~mask:(Int64.logand mask col) in
      let lo =
        shannon dst ~tt ~nvars ~vars ~order:order_rest
          ~mask:(Int64.logand mask (Int64.lognot col))
      in
      if hi = lo then hi else Aig.mk_mux dst ~sel:vars.(v) ~t1:hi ~t0:lo

let permute rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Full rewriting pass: each AND node is, with probability [p], replaced by
   a Shannon resynthesis of a 4-cut in a random variable order.  The result
   is built in a fresh AIG (so structural hashing re-shares logic). *)
let rewrite ?(seed = 0) ?(p = 0.5) ?(k = 4) src =
  let rng = Random.State.make [| seed; 0x0b7 |] in
  let dst = Aig.create () in
  let n = Aig.num_nodes src in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis src)) in
  let latch_lits =
    Array.init (Aig.num_latches src) (fun i ->
        Aig.add_latch dst ~init:(Aig.latch_init src i))
  in
  let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
  for id = 0 to n - 1 do
    map.(id) <-
      (match Aig.node src id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i -> latch_lits.(i)
      | Aig.And (a, b) ->
        if Random.State.float rng 1.0 < p then begin
          let leaves = structural_cut src ~k id in
          let nvars = List.length leaves in
          let tt = cone_truth_table src ~leaves id in
          let vars = Array.of_list (List.map (fun leaf -> map.(leaf)) leaves) in
          let order = permute rng (List.init nvars (fun i -> i)) in
          let mask =
            if nvars = 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl nvars)) 1L
          in
          shannon dst ~tt ~nvars ~vars ~order ~mask
        end
        else Aig.mk_and dst (tr_lit a) (tr_lit b))
  done;
  List.iteri
    (fun i _ ->
      Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next src i)))
    (Aig.latch_ids src);
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos src);
  let cleaned, _ = Aig.cleanup dst in
  cleaned

(* --- latch sweeping -------------------------------------------------------- *)

(* Constant propagation through registers: assume every latch is stuck at
   its initial value, evaluate all next-states under that assumption, and
   demote any latch whose next-state can differ; iterate to a (greatest)
   fixed point.  Surviving latches are genuinely stuck and are replaced by
   constants.  PIs are unknowns, handled by evaluating under both of two
   complementary input words and requiring agreement. *)
let latch_sweep src =
  let n_latches = Aig.num_latches src in
  let n_pis = Aig.num_pis src in
  let stuck = Array.make n_latches true in
  let changed = ref true in
  (* two adversarial PI vectors: all-zero and all-one patterns are not
     enough in theory, so use several random words; the check is
     conservative (may miss stuck latches, never wrongly claims one)
     because a latch is kept stuck only if its next equals its init on all
     tested patterns AND the next-state cone contains no PI or non-stuck
     latch. *)
  let support_clean = Array.make n_latches false in
  let supp_memo = Hashtbl.create 256 in
  let rec support_ok id =
    match Hashtbl.find_opt supp_memo id with
    | Some b -> b
    | None ->
      let b =
        match Aig.node src id with
        | Aig.Const -> true
        | Aig.Pi _ -> false
        | Aig.Latch i -> stuck.(i)
        | Aig.And (a, b) -> support_ok (Aig.node_of_lit a) && support_ok (Aig.node_of_lit b)
      in
      Hashtbl.replace supp_memo id b;
      b
  in
  while !changed do
    changed := false;
    Hashtbl.reset supp_memo;
    for i = 0 to n_latches - 1 do
      support_clean.(i) <- stuck.(i) && support_ok (Aig.node_of_lit (Aig.latch_next src i))
    done;
    (* evaluate next states with stuck latches at init, others unknown:
       simulate with the unknowns taking a random word *)
    let pi_words = Array.init n_pis (fun i -> Int64.of_int ((i * 0x9e3779b9) lxor 0x5555)) in
    let latch_words =
      Array.init n_latches (fun i ->
          if stuck.(i) then (if Aig.latch_init src i then -1L else 0L)
          else Int64.of_int ((i * 0x61c88647) lxor 0x0f0f))
    in
    let values = Aig.Sim.eval_comb src ~pi_words ~latch_words in
    for i = 0 to n_latches - 1 do
      if stuck.(i) then begin
        let next_w = Aig.Sim.lit_word values (Aig.latch_next src i) in
        let want = if Aig.latch_init src i then -1L else 0L in
        if not (support_clean.(i) && next_w = want) then begin
          stuck.(i) <- false;
          changed := true
        end
      end
    done
  done;
  (* rebuild, replacing stuck latches with their constants *)
  let dst = Aig.create () in
  let n = Aig.num_nodes src in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis src)) in
  let latch_lits = Array.make n_latches (-1) in
  for i = 0 to n_latches - 1 do
    if not stuck.(i) then latch_lits.(i) <- Aig.add_latch dst ~init:(Aig.latch_init src i)
  done;
  let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
  for id = 0 to n - 1 do
    map.(id) <-
      (match Aig.node src id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i ->
        if stuck.(i) then (if Aig.latch_init src i then Aig.lit_true else Aig.lit_false)
        else latch_lits.(i)
      | Aig.And (a, b) -> Aig.mk_and dst (tr_lit a) (tr_lit b))
  done;
  for i = 0 to n_latches - 1 do
    if not stuck.(i) then
      Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next src i))
  done;
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos src);
  let cleaned, _ = Aig.cleanup dst in
  cleaned

(* --- latch deduplication ---------------------------------------------------- *)

(* Merge latches with the same (next-state literal, initial value): the
   trivial register correspondence exploited by [5] and [9]. *)
let dedup_latches src =
  let n_latches = Aig.num_latches src in
  let rep = Array.init n_latches (fun i -> i) in
  let table = Hashtbl.create 16 in
  for i = 0 to n_latches - 1 do
    let key = (Aig.latch_next src i, Aig.latch_init src i) in
    match Hashtbl.find_opt table key with
    | Some j -> rep.(i) <- j
    | None -> Hashtbl.add table key i
  done;
  if Array.for_all (fun i -> rep.(i) = i) (Array.init n_latches (fun i -> i)) then src
  else begin
    let dst = Aig.create () in
    let n = Aig.num_nodes src in
    let map = Array.make n (-1) in
    map.(0) <- 0;
    let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis src)) in
    let latch_lits = Array.make n_latches (-1) in
    for i = 0 to n_latches - 1 do
      if rep.(i) = i then latch_lits.(i) <- Aig.add_latch dst ~init:(Aig.latch_init src i)
    done;
    let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
    for id = 0 to n - 1 do
      map.(id) <-
        (match Aig.node src id with
        | Aig.Const -> 0
        | Aig.Pi i -> pi_lits.(i)
        | Aig.Latch i -> latch_lits.(rep.(i))
        | Aig.And (a, b) -> Aig.mk_and dst (tr_lit a) (tr_lit b))
    done;
    for i = 0 to n_latches - 1 do
      if rep.(i) = i then
        Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next src i))
    done;
    List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos src);
    let cleaned, _ = Aig.cleanup dst in
    cleaned
  end
