lib/transform/retime.ml: Aig Array List
