lib/transform/mutate.ml: Aig Array Format List Random
