lib/transform/fraig.ml: Aig Array Hashtbl Int64 List Random Sat
