lib/transform/transform.ml: Fraig Mutate Opt Retime
