lib/transform/opt.ml: Aig Array Hashtbl Int Int64 List Random Set
