lib/transform/transform.mli: Aig Format
