(* Fraiging (SAT sweeping): merge combinationally equivalent AIG nodes.

   Random simulation partitions nodes into candidate classes by signature
   (normalized for polarity); a SAT solver then proves or refutes each
   candidate against its class representative, with counterexamples fed
   back as new simulation patterns.  Latch outputs are treated as free
   inputs, so merges are valid in any state — the combinational notion of
   equivalence the paper's method builds on. *)

type stats = {
  mutable sat_calls : int;
  mutable merged : int;
  mutable refuted : int;
  mutable rounds : int;
}

let sweep ?(seed = 7) ?(max_rounds = 4) ?(n_words = 4) aig =
  let stats = { sat_calls = 0; merged = 0; refuted = 0; rounds = 0 } in
  let n = Aig.num_nodes aig in
  let n_pis = Aig.num_pis aig and n_latches = Aig.num_latches aig in
  let rng = Random.State.make [| seed; 0xf4a16 |] in
  let random_pattern () =
    ( Array.init n_pis (fun _ -> Random.State.int64 rng Int64.max_int),
      Array.init n_latches (fun _ -> Random.State.int64 rng Int64.max_int) )
  in
  let patterns = ref (List.init n_words (fun _ -> random_pattern ())) in
  let solver = Sat.create () in
  let pi_vars, latch_vars, sat_lit = Aig.Cnf.encode_fresh solver aig in
  let merge_to = Array.make n (-1) in
  let proven_distinct : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* one round: simulate, classify, attempt SAT merges; returns the number
     of fresh counterexample patterns added *)
  let round () =
    stats.rounds <- stats.rounds + 1;
    let sigs = Array.make n [||] in
    let width = List.length !patterns in
    List.iteri
      (fun w (pi_words, latch_words) ->
        let values = Aig.Sim.eval_comb aig ~pi_words ~latch_words in
        for id = 0 to n - 1 do
          if w = 0 then sigs.(id) <- Array.make width 0L;
          sigs.(id).(w) <- values.(id)
        done)
      !patterns;
    let normalized sig_arr =
      if Int64.logand sig_arr.(0) 1L = 1L then (true, Array.map Int64.lognot sig_arr)
      else (false, Array.copy sig_arr)
    in
    let classes : (int64 array, (int * bool) list) Hashtbl.t = Hashtbl.create 256 in
    for id = n - 1 downto 1 do
      if merge_to.(id) < 0 then begin
        match Aig.node aig id with
        | Aig.And _ ->
          let compl, key = normalized sigs.(id) in
          let prev = match Hashtbl.find_opt classes key with Some l -> l | None -> [] in
          Hashtbl.replace classes key ((id, compl) :: prev)
        | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
      end
    done;
    let n_cex = ref 0 in
    let try_merge rep rep_compl (id, compl) =
      if id <> rep && merge_to.(id) < 0 && not (Hashtbl.mem proven_distinct (rep, id))
      then begin
        let pol = compl <> rep_compl in
        let l_rep = Aig.lit_of_node rep in
        let l_id = if pol then Aig.lit_not (Aig.lit_of_node id) else Aig.lit_of_node id in
        let s = Sat.new_var solver in
        let sl = Sat.Lit.pos s in
        let ns = Sat.Lit.negate sl in
        let a = sat_lit l_rep and b = sat_lit l_id in
        Sat.add_clause solver [ ns; a; b ];
        Sat.add_clause solver [ ns; Sat.Lit.negate a; Sat.Lit.negate b ];
        stats.sat_calls <- stats.sat_calls + 1;
        (match Sat.solve ~assumptions:[ sl ] solver with
        | Sat.Unsat ->
          stats.merged <- stats.merged + 1;
          merge_to.(id) <- (if pol then Aig.lit_not l_rep else l_rep)
        | Sat.Sat ->
          stats.refuted <- stats.refuted + 1;
          Hashtbl.replace proven_distinct (rep, id) ();
          incr n_cex;
          let word_of v = if Sat.value solver v then -1L else 0L in
          patterns :=
            ( Array.map word_of pi_vars,
              Array.map word_of latch_vars )
            :: !patterns);
        Sat.add_clause solver [ ns ]
      end
    in
    Hashtbl.iter
      (fun _ members ->
        match List.sort compare members with
        | [] | [ _ ] -> ()
        | (rep, rep_compl) :: rest -> List.iter (try_merge rep rep_compl) rest)
      classes;
    !n_cex
  in
  let rec iterate k = if k > 0 && round () > 0 then iterate (k - 1) in
  iterate max_rounds;
  (* rebuild with merges applied *)
  let dst = Aig.create () in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis aig)) in
  let latch_lits =
    Array.init n_latches (fun i -> Aig.add_latch dst ~init:(Aig.latch_init aig i))
  in
  let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
  for id = 0 to n - 1 do
    map.(id) <-
      (match Aig.node aig id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i -> latch_lits.(i)
      | Aig.And (a, b) ->
        if merge_to.(id) >= 0 then tr_lit merge_to.(id)
        else Aig.mk_and dst (tr_lit a) (tr_lit b))
  done;
  for i = 0 to n_latches - 1 do
    Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next aig i))
  done;
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos aig);
  let cleaned, _ = Aig.cleanup dst in
  (cleaned, stats)
