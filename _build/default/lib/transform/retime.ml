(* Retiming of AIGs.

   Forward retiming moves registers from the fanins of an AND node to its
   output (paper Fig. 3).  The move is exactly behaviour-preserving: the
   new register's initial value is the gate function of the old initial
   values, so no initialization problem arises (Stok et al. [13] is only
   needed for backward moves, which we justify explicitly).

   Backward retiming splits a register whose next-state is an AND back
   into registers on the fanins; the initial values are justified by
   choosing any preimage of the old initial value under the gate. *)

(* One forward pass: every AND whose two fanins are latch outputs becomes
   a latch over the AND of the data inputs.  [max_moves] bounds the number
   of rewritten nodes (for partial retimings).  Returns [None] when no move
   applies. *)
let forward_step ?(max_moves = max_int) src =
  let dst = Aig.create () in
  let n = Aig.num_nodes src in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let moves = ref 0 in
  (* pre-create PIs and original latches so indices line up *)
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis src)) in
  let latch_lits =
    Array.init (Aig.num_latches src) (fun i ->
        Aig.add_latch dst ~init:(Aig.latch_init src i))
  in
  let eligible id =
    match Aig.node src id with
    | Aig.And (a, b) -> (
      match (Aig.node src (Aig.node_of_lit a), Aig.node src (Aig.node_of_lit b)) with
      | Aig.Latch _, Aig.Latch _ -> true
      | _ -> false)
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> false
  in
  let rec tr_lit l = map_node (Aig.node_of_lit l) lxor (l land 1)
  and map_node id =
    if map.(id) >= 0 then map.(id)
    else begin
      let lit =
        match Aig.node src id with
        | Aig.Const -> 0
        | Aig.Pi i -> pi_lits.(i)
        | Aig.Latch i -> latch_lits.(i)
        | Aig.And (a, b) ->
          if eligible id && !moves < max_moves then begin
            incr moves;
            let li = Aig.latch_index src (Aig.node_of_lit a) in
            let lj = Aig.latch_index src (Aig.node_of_lit b) in
            let ca = Aig.lit_is_compl a and cb = Aig.lit_is_compl b in
            let init =
              (if ca then not (Aig.latch_init src li) else Aig.latch_init src li)
              && if cb then not (Aig.latch_init src lj) else Aig.latch_init src lj
            in
            let fresh = Aig.add_latch dst ~init in
            (* break feedback cycles: record the mapping before recursing *)
            map.(id) <- fresh;
            let da =
              let l = tr_lit (Aig.latch_next src li) in
              if ca then Aig.lit_not l else l
            in
            let db =
              let l = tr_lit (Aig.latch_next src lj) in
              if cb then Aig.lit_not l else l
            in
            Aig.set_latch_next dst fresh ~next:(Aig.mk_and dst da db);
            fresh
          end
          else Aig.mk_and dst (tr_lit a) (tr_lit b)
      in
      if map.(id) < 0 then map.(id) <- lit;
      map.(id)
    end
  in
  for id = 0 to n - 1 do
    ignore (map_node id)
  done;
  List.iteri
    (fun i _ ->
      Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next src i)))
    (Aig.latch_ids src);
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos src);
  if !moves = 0 then None
  else begin
    let cleaned, _ = Aig.cleanup dst in
    Some cleaned
  end

let forward ?(max_steps = 4) src =
  let rec go k t = if k = 0 then t else match forward_step t with None -> t | Some t' -> go (k - 1) t' in
  go max_steps src

(* One backward pass: a latch whose next-state is an AND literal is split
   into latches on the AND's fanins.  Initial values are justified by a
   preimage: for output 1 both inputs start at 1, for output 0 both start
   at 0 (a valid preimage for AND up to complement bookkeeping). *)
let backward_step ?(max_moves = max_int) src =
  let dst = Aig.create () in
  let n = Aig.num_nodes src in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let moves = ref 0 in
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis src)) in
  (* decide which latches to split *)
  let split = Array.make (Aig.num_latches src) None in
  List.iteri
    (fun i _ ->
      let next = Aig.latch_next src i in
      if !moves < max_moves then begin
        match Aig.node src (Aig.node_of_lit next) with
        | Aig.And (a, b) ->
          incr moves;
          split.(i) <- Some (Aig.lit_is_compl next, a, b)
        | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
      end)
    (Aig.latch_ids src);
  (* create replacement latches; the fanin latches capture a and b *)
  let repl = Array.make (Aig.num_latches src) (-1) in
  let kept = Array.make (Aig.num_latches src) (-1) in
  List.iteri
    (fun i _ ->
      match split.(i) with
      | None -> kept.(i) <- Aig.add_latch dst ~init:(Aig.latch_init src i)
      | Some (compl, _, _) ->
        (* old latch holds v, with v = (a & b) ^ compl at capture time.
           old init: choose inits for the two new latches whose AND
           reproduces it *)
        let v0 = Aig.latch_init src i in
        let and0 = if compl then not v0 else v0 in
        let ia, ib = if and0 then (true, true) else (false, false) in
        let la = Aig.add_latch dst ~init:ia in
        let lb = Aig.add_latch dst ~init:ib in
        let out = Aig.mk_and dst la lb in
        repl.(i) <- (2 * i);
        (* placeholder, real value below *)
        kept.(i) <- -1;
        (* store the pair encoded: we keep them via closure below *)
        split.(i) <- Some (compl, la, lb);
        repl.(i) <- if compl then Aig.lit_not out else out)
    (Aig.latch_ids src);
  let rec tr_lit l = map_node (Aig.node_of_lit l) lxor (l land 1)
  and map_node id =
    if map.(id) >= 0 then map.(id)
    else begin
      let lit =
        match Aig.node src id with
        | Aig.Const -> 0
        | Aig.Pi i -> pi_lits.(i)
        | Aig.Latch i -> if kept.(i) >= 0 then kept.(i) else repl.(i)
        | Aig.And (a, b) -> Aig.mk_and dst (tr_lit a) (tr_lit b)
      in
      map.(id) <- lit;
      map.(id)
    end
  in
  for id = 0 to n - 1 do
    ignore (map_node id)
  done;
  List.iteri
    (fun i _ ->
      match split.(i) with
      | None -> Aig.set_latch_next dst kept.(i) ~next:(tr_lit (Aig.latch_next src i))
      | Some (_, la, lb) ->
        (* the split latches capture the AND's fanins; note the fanins are
           literals of the ORIGINAL graph feeding the original AND *)
        let next = Aig.latch_next src i in
        (match Aig.node src (Aig.node_of_lit next) with
        | Aig.And (a, b) ->
          Aig.set_latch_next dst la ~next:(tr_lit a);
          Aig.set_latch_next dst lb ~next:(tr_lit b)
        | Aig.Const | Aig.Pi _ | Aig.Latch _ -> assert false))
    (Aig.latch_ids src);
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos src);
  if !moves = 0 then None
  else begin
    let cleaned, _ = Aig.cleanup dst in
    Some cleaned
  end

let backward ?(max_steps = 2) src =
  let rec go k t =
    if k = 0 then t else match backward_step t with None -> t | Some t' -> go (k - 1) t'
  in
  go max_steps src
