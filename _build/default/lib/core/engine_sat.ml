(* SAT-based refinement engine: the paper's future-work variant built on
   "extra variables representing intermediate signals" (Tseitin encoding).

   The product machine is unrolled into [k]+1 time frames sharing one
   solver: frame 1 starts from a free state, each later frame feeds the
   latches with the previous frame's next-state values.  The
   correspondence condition Q is assumed in frames 1..k through equality
   selector literals, and candidate pairs are compared in frame k+1 —
   [k] = 1 is exactly the paper's Equation (3); larger [k] is the
   k-inductive strengthening (signals must stay equal for k steps before
   the relation is required to propagate), which proves strictly more
   pairs at higher cost.  The base case adapts accordingly: classes must
   agree on the first k frames reachable from the initial state.

   Because everything is assumption-based, the clause database and all
   learned clauses persist across every query of every iteration.  A
   satisfying assignment is a concrete Q-conforming run that distinguishes
   some pair; its last-frame values split every affected class at once
   (counterexample-driven bulk refinement). *)

exception Budget_exceeded of string

type ctx = {
  p : Product.t;
  k : int; (* induction depth; 1 = the paper *)
  solver : Sat.t; (* the k+1-frame unrolling *)
  frames : (int -> Sat.Lit.t) array; (* frames.(i) for i = 0..k: lit maps *)
  solver0 : Sat.t; (* the initialized unrolling: frames 0..k-1 from s0 *)
  init_frames : (int -> Sat.Lit.t) array;
  eq_sel : (int * int * int, int) Hashtbl.t; (* (frame, la, lb) selectors *)
  diff_sel : (int * int, int) Hashtbl.t; (* last-frame difference selectors *)
  diff_sel0 : (int * int * int, int) Hashtbl.t; (* (frame, la, lb) *)
  mutable sat_calls : int;
  max_sat_calls : int;
}

(* Chain [n] frames of [aig] inside [solver].  [first_latch_var] supplies
   the frame-0 latch variables; later frames capture the previous frame's
   next-state values through fresh tied variables. *)
let unroll solver aig ~n ~first_latch_var =
  let n_latches = Aig.num_latches aig in
  let frames = Array.make n (fun _ -> 0) in
  let latch_vars = ref first_latch_var in
  for i = 0 to n - 1 do
    let this_latch = !latch_vars in
    let x_vars = Array.init (Aig.num_pis aig) (fun _ -> Sat.new_var solver) in
    let lit_of =
      Aig.Cnf.encode solver aig ~pi_var:(fun j -> x_vars.(j)) ~latch_var:this_latch
    in
    frames.(i) <- lit_of;
    (* tie the next frame's state to this frame's next-state functions *)
    let next_latch =
      Array.init n_latches (fun j ->
          let v = Sat.new_var solver in
          let next = lit_of (Aig.latch_next aig j) in
          Sat.add_clause solver [ Sat.Lit.neg v; next ];
          Sat.add_clause solver [ Sat.Lit.pos v; Sat.Lit.negate next ];
          v)
    in
    latch_vars := fun j -> next_latch.(j)
  done;
  frames

let make ?(max_sat_calls = max_int) ?(k = 1) p =
  if k < 1 then invalid_arg "Engine_sat.make: k must be >= 1";
  let aig = p.Product.aig in
  let solver = Sat.create () in
  let s_vars = Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var solver) in
  let frames = unroll solver aig ~n:(k + 1) ~first_latch_var:(fun i -> s_vars.(i)) in
  let solver0 = Sat.create () in
  let s0_vars =
    Array.init (Aig.num_latches aig) (fun i ->
        let v = Sat.new_var solver0 in
        Sat.add_clause solver0 [ Sat.Lit.make v (Aig.latch_init aig i) ];
        v)
  in
  let init_frames = unroll solver0 aig ~n:k ~first_latch_var:(fun i -> s0_vars.(i)) in
  {
    p;
    k;
    solver;
    frames;
    solver0;
    init_frames;
    eq_sel = Hashtbl.create 256;
    diff_sel = Hashtbl.create 256;
    diff_sel0 = Hashtbl.create 256;
    sat_calls = 0;
    max_sat_calls;
  }

let norm_key la lb = if la <= lb then (la, lb) else (lb, la)

(* selector literal sel with sel -> (a <-> b) *)
let equality_selector solver table key a b =
  match Hashtbl.find_opt table key with
  | Some v -> Sat.Lit.pos v
  | None ->
    let v = Sat.new_var solver in
    let sl = Sat.Lit.pos v and ns = Sat.Lit.neg v in
    Sat.add_clause solver [ ns; Sat.Lit.negate a; b ];
    Sat.add_clause solver [ ns; a; Sat.Lit.negate b ];
    Hashtbl.replace table key v;
    sl

(* selector literal sel with sel -> (a <> b) *)
let difference_selector solver table key a b =
  match Hashtbl.find_opt table key with
  | Some v -> Sat.Lit.pos v
  | None ->
    let v = Sat.new_var solver in
    let sl = Sat.Lit.pos v and ns = Sat.Lit.neg v in
    Sat.add_clause solver [ ns; a; b ];
    Sat.add_clause solver [ ns; Sat.Lit.negate a; Sat.Lit.negate b ];
    Hashtbl.replace table key v;
    sl

let check_budget ctx =
  ctx.sat_calls <- ctx.sat_calls + 1;
  if ctx.sat_calls > ctx.max_sat_calls then raise (Budget_exceeded "sat calls")

let lit_value solver l =
  let v = Sat.value solver (Sat.Lit.var l) in
  if Sat.Lit.sign l then v else not v

(* Split every class according to a model's valuation of [frame_lit]. *)
let bulk_split partition frame_lit solver =
  ignore
    (Partition.refine_by_key partition (fun id ->
         lit_value solver (frame_lit (Partition.norm_lit partition id))))

(* Initial-state refinement: classes must agree on every input in each of
   the first k frames from s0 (Equation 2 for k = 1). *)
let refine_initial ctx partition =
  let rec clean_pass () =
    let violated =
      List.find_map
        (fun cls ->
          match Partition.members partition cls with
          | [] | [ _ ] -> None
          | rep :: rest ->
            let check_frame frame =
              let lit_of = ctx.init_frames.(frame) in
              let a = lit_of (Partition.norm_lit partition rep) in
              List.find_map
                (fun id ->
                  let b = lit_of (Partition.norm_lit partition id) in
                  if a = b then None
                  else begin
                    let la, lb =
                      norm_key (Partition.norm_lit partition rep)
                        (Partition.norm_lit partition id)
                    in
                    let dsel =
                      difference_selector ctx.solver0 ctx.diff_sel0 (frame, la, lb) a b
                    in
                    check_budget ctx;
                    match Sat.solve ~assumptions:[ dsel ] ctx.solver0 with
                    | Sat.Unsat -> None
                    | Sat.Sat -> Some frame
                  end)
                rest
            in
            let rec frames frame =
              if frame >= ctx.k then None
              else match check_frame frame with Some f -> Some f | None -> frames (frame + 1)
            in
            frames 0)
        (Partition.multi_member_classes partition)
    in
    match violated with
    | Some frame ->
      bulk_split partition ctx.init_frames.(frame) ctx.solver0;
      clean_pass ()
    | None -> ()
  in
  clean_pass ()

(* The Q assumptions of the current partition: one equality selector per
   (representative, member) pair and per assumed frame 1..k. *)
let q_assumptions ctx partition =
  List.concat_map
    (fun (rep, id) ->
      let la = Partition.norm_lit partition rep and lb = Partition.norm_lit partition id in
      List.filter_map
        (fun frame ->
          let lit_of = ctx.frames.(frame) in
          let a = lit_of la and b = lit_of lb in
          if a = b then None
          else
            let ka, kb = norm_key la lb in
            Some (equality_selector ctx.solver ctx.eq_sel (frame, ka, kb) a b))
        (List.init ctx.k (fun i -> i)))
    (Partition.constraint_pairs partition)

(* One refinement event (Equation 3 generalized to k frames): find a pair
   whose frame-(k+1) values differ on some run conforming to Q for k
   frames; split all classes with the witness.  Returns false when a full
   scan finds no violation. *)
let refine_once ctx partition =
  let q = q_assumptions ctx partition in
  let last = ctx.frames.(ctx.k) in
  let violated =
    List.find_map
      (fun cls ->
        match Partition.members partition cls with
        | [] | [ _ ] -> None
        | rep :: rest ->
          let a = last (Partition.norm_lit partition rep) in
          List.find_map
            (fun id ->
              let b = last (Partition.norm_lit partition id) in
              if a = b then None
              else begin
                let key =
                  norm_key (Partition.norm_lit partition rep) (Partition.norm_lit partition id)
                in
                let dsel = difference_selector ctx.solver ctx.diff_sel key a b in
                check_budget ctx;
                match Sat.solve ~assumptions:(dsel :: q) ctx.solver with
                | Sat.Unsat -> None
                | Sat.Sat -> Some ()
              end)
            rest)
      (Partition.multi_member_classes partition)
  in
  match violated with
  | Some () ->
    bulk_split partition last ctx.solver;
    true
  | None -> false
