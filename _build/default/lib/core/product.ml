(* The product machine: both circuits side by side over shared primary
   inputs, with the union of their latches.  Signal correspondence runs on
   the set of all signals of this machine (paper Section 3); the symbolic
   traversal baseline runs on the same AIG via [Reach].

   Structural hashing of the underlying AIG means syntactically identical
   logic of the two circuits is shared; such shared nodes are trivial
   correspondences. *)

type side = { n_latches : int; latch_offset : int; lit_in_product : int -> int }

type t = {
  aig : Aig.t;
  spec : side;
  impl : side;
  is_spec : bool array; (* per product node id (at construction time) *)
  is_impl : bool array;
  outputs : (string * int * int) list; (* name, spec literal, impl literal *)
  n_original_nodes : int; (* nodes beyond this are retiming helpers *)
}

let make spec_aig impl_aig =
  if Aig.num_pis spec_aig <> Aig.num_pis impl_aig then
    invalid_arg "Product.make: circuits have different numbers of inputs";
  let aig = Aig.create () in
  let pi_lits = Array.init (Aig.num_pis spec_aig) (fun _ -> Aig.add_pi aig) in
  let spec_latch_lits =
    Array.init (Aig.num_latches spec_aig) (fun i ->
        Aig.add_latch aig ~init:(Aig.latch_init spec_aig i))
  in
  let impl_latch_lits =
    Array.init (Aig.num_latches impl_aig) (fun i ->
        Aig.add_latch aig ~init:(Aig.latch_init impl_aig i))
  in
  let tr_spec =
    Aig.copy_into aig ~src:spec_aig
      ~pi_lit:(fun i -> pi_lits.(i))
      ~latch_lit:(fun i -> spec_latch_lits.(i))
  in
  let tr_impl =
    Aig.copy_into aig ~src:impl_aig
      ~pi_lit:(fun i -> pi_lits.(i))
      ~latch_lit:(fun i -> impl_latch_lits.(i))
  in
  List.iteri
    (fun i _ ->
      Aig.set_latch_next aig spec_latch_lits.(i)
        ~next:(tr_spec (Aig.latch_next spec_aig i)))
    (Aig.latch_ids spec_aig);
  List.iteri
    (fun i _ ->
      Aig.set_latch_next aig impl_latch_lits.(i)
        ~next:(tr_impl (Aig.latch_next impl_aig i)))
    (Aig.latch_ids impl_aig);
  (* pair outputs by name *)
  let impl_pos = Aig.pos impl_aig in
  let outputs =
    List.map
      (fun (name, ls) ->
        match List.assoc_opt name impl_pos with
        | Some li -> (name, tr_spec ls, tr_impl li)
        | None -> invalid_arg (Printf.sprintf "Product.make: output %s unmatched" name))
      (Aig.pos spec_aig)
  in
  if List.length impl_pos <> List.length outputs then
    invalid_arg "Product.make: implementation has extra outputs";
  (* a PO on the product so Reach can check equivalence directly *)
  let ok =
    List.fold_left
      (fun acc (_, ls, li) -> Aig.mk_and aig acc (Aig.mk_xnor aig ls li))
      Aig.lit_true outputs
  in
  Aig.add_po aig "outputs_agree" ok;
  (* origin marks *)
  let n = Aig.num_nodes aig in
  let is_spec = Array.make n false and is_impl = Array.make n false in
  for id = 0 to Aig.num_nodes spec_aig - 1 do
    is_spec.(Aig.node_of_lit (tr_spec (Aig.lit_of_node id))) <- true
  done;
  for id = 0 to Aig.num_nodes impl_aig - 1 do
    is_impl.(Aig.node_of_lit (tr_impl (Aig.lit_of_node id))) <- true
  done;
  {
    aig;
    spec =
      {
        n_latches = Aig.num_latches spec_aig;
        latch_offset = 0;
        lit_in_product = tr_spec;
      };
    impl =
      {
        n_latches = Aig.num_latches impl_aig;
        latch_offset = Aig.num_latches spec_aig;
        lit_in_product = tr_impl;
      };
    is_spec;
    is_impl;
    outputs;
    n_original_nodes = n;
  }

(* Candidate signals for the correspondence: the constant, the PIs, every
   latch output and every AND node (including retiming helpers added
   later). *)
let candidate_nodes t =
  List.init (Aig.num_nodes t.aig) (fun id -> id)

let node_is_spec t id = id < Array.length t.is_spec && t.is_spec.(id)
let node_is_impl t id = id < Array.length t.is_impl && t.is_impl.(id)
let node_is_helper t id = id >= t.n_original_nodes

(* Reference valuation (paper Section 3): the initial state plus one fixed
   input vector; used to normalize every signal's polarity, which lets the
   method detect antivalences as well as equivalences. *)
let reference_values ?(seed = 0x90) t =
  let n_pis = Aig.num_pis t.aig in
  let rng = Random.State.make [| seed |] in
  let pi_words = Array.init n_pis (fun _ -> if Random.State.bool rng then 1L else 0L) in
  let latch_words = Aig.Sim.initial_latch_words t.aig in
  let values = Aig.Sim.eval_comb t.aig ~pi_words ~latch_words in
  Array.init (Aig.num_nodes t.aig) (fun id -> Int64.logand values.(id) 1L = 1L)
