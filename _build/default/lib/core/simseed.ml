(* Random sequential simulation of the product machine, used to
   pre-partition the candidate set (paper Section 4): signals that differ
   on any simulated reachable state are certainly not sequentially
   equivalent, so the fixed point needs fewer exact iterations. *)

(* Signature of each node: its (polarity-normalized) words over a number
   of simulated frames starting in the initial state. *)
let signatures ?(seed = 3) ?(n_frames = 16) product pol =
  let aig = product.Product.aig in
  let n = Aig.num_nodes aig in
  let n_pis = Aig.num_pis aig in
  let frames = Aig.Sim.random_frames ~seed ~n_pis ~n_frames in
  let sigs = Array.make n [] in
  let state = ref (Aig.Sim.initial_latch_words aig) in
  List.iter
    (fun pi_words ->
      let values, next = Aig.Sim.step aig ~pi_words ~latch_words:!state in
      state := next;
      for id = 0 to n - 1 do
        let w = if pol.(id) then Int64.lognot values.(id) else values.(id) in
        sigs.(id) <- w :: sigs.(id)
      done)
    frames;
  Array.map (fun l -> List.rev l) sigs

(* Refine the partition so that only signals with identical normalized
   simulation signatures share a class. *)
let refine ?seed ?n_frames product partition =
  let sigs =
    signatures ?seed ?n_frames product (Array.init
      (Aig.num_nodes product.Product.aig)
      (fun id -> Partition.polarity partition id))
  in
  Partition.refine_by_key partition (fun id -> sigs.(id))
