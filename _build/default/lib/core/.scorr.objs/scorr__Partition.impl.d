lib/core/partition.ml: Aig Array Format Hashtbl List Printf String
