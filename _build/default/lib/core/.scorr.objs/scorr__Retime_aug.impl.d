lib/core/retime_aug.ml: Aig List Product
