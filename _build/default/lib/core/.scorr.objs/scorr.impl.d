lib/core/scorr.ml: Engine_bdd Engine_sat Partition Product Retime_aug Simseed Verify
