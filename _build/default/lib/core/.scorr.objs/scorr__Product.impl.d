lib/core/product.ml: Aig Array Int64 List Printf Random
