lib/core/engine_sat.ml: Aig Array Hashtbl List Partition Product Sat
