lib/core/engine_bdd.ml: Aig Array Bdd Engines Hashtbl List Partition Product
