lib/core/scorr.mli: Aig Bdd Format Hashtbl Sat
