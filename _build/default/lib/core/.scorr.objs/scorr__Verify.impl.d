lib/core/verify.ml: Aig Array Bdd Engine_bdd Engine_sat Format Fun Hashtbl Int64 List Partition Printf Product Reach Retime_aug Sat Simseed String Sys
