lib/core/simseed.ml: Aig Array Int64 List Partition Product
