(* Candidate-set extension by forward retiming with lag 1 (paper Fig. 3).

   No latch is moved — so no initialization problem arises; instead, for
   every AND gate whose fanins are both latch outputs, the combinational
   logic that a forward retiming move *would* create is added to the
   product machine: an AND over the latches' data inputs.  The new signal
   equals, one cycle early, the original gate's output; its presence in F
   lets the fixed point relate signals across a retiming boundary.
   Because new AND nodes can again satisfy the condition in a later round,
   repeated application also covers retimings with larger lags. *)

(* One augmentation round over the product machine; mutates the AIG and
   returns the number of signals added. *)
let augment product =
  let aig = product.Product.aig in
  let n_before = Aig.num_nodes aig in
  (* collect the moves first: adding nodes while scanning would rescan them *)
  let moves = ref [] in
  for id = 0 to n_before - 1 do
    match Aig.node aig id with
    | Aig.And (a, b) -> (
      match (Aig.node aig (Aig.node_of_lit a), Aig.node aig (Aig.node_of_lit b)) with
      | Aig.Latch i, Aig.Latch j -> moves := (a, i, b, j) :: !moves
      | _ -> ())
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
  done;
  List.iter
    (fun (a, i, b, j) ->
      let da =
        let next = Aig.latch_next aig i in
        if Aig.lit_is_compl a then Aig.lit_not next else next
      in
      let db =
        let next = Aig.latch_next aig j in
        if Aig.lit_is_compl b then Aig.lit_not next else next
      in
      (* structural hashing silently discards moves whose logic exists *)
      ignore (Aig.mk_and aig da db))
    (List.rev !moves);
  Aig.num_nodes aig - n_before
