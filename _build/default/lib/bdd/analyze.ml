(* Structural queries on BDDs: support, size, evaluation, model counting,
   model extraction and printing. *)

open Node

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    match f with
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size f =
  let seen = Hashtbl.create 64 in
  let rec go acc f =
    match f with
    | Zero | One -> acc
    | Node n ->
      if Hashtbl.mem seen n.id then acc
      else begin
        Hashtbl.add seen n.id ();
        go (go (acc + 1) n.lo) n.hi
      end
  in
  go 0 f

let size_list fs =
  let seen = Hashtbl.create 64 in
  let rec go acc f =
    match f with
    | Zero | One -> acc
    | Node n ->
      if Hashtbl.mem seen n.id then acc
      else begin
        Hashtbl.add seen n.id ();
        go (go (acc + 1) n.lo) n.hi
      end
  in
  List.fold_left go 0 fs

let rec eval f env =
  match f with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

(* Number of satisfying assignments over [nvars] variables. *)
let sat_count m ~nvars f =
  let memo = Hashtbl.create 256 in
  (* weight of a subfunction rooted strictly below level [above] *)
  let nlevels = nvars in
  let rec go f =
    match f with
    | Zero -> (0.0, nlevels)
    | One -> (1.0, nlevels)
    | Node n -> (
      let lv = level m n.var in
      match Hashtbl.find_opt memo n.id with
      | Some c -> (c, lv)
      | None ->
        let clo, llo = go n.lo and chi, lhi = go n.hi in
        let clo = clo *. (2.0 ** float_of_int (llo - lv - 1)) in
        let chi = chi *. (2.0 ** float_of_int (lhi - lv - 1)) in
        let c = clo +. chi in
        Hashtbl.add memo n.id c;
        (c, lv))
  in
  let c, lv = go f in
  c *. (2.0 ** float_of_int lv)

(* One satisfying assignment as a partial cube, or [None] if unsat. *)
let any_sat f =
  let rec go acc f =
    match f with
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n -> (
      match go ((n.var, true) :: acc) n.hi with
      | Some cube -> Some cube
      | None -> go ((n.var, false) :: acc) n.lo)
  in
  go [] f

(* All satisfying partial cubes, for tests on small functions. *)
let all_sat f =
  let rec go acc f k =
    match f with
    | Zero -> k
    | One -> List.rev acc :: k
    | Node n -> go ((n.var, true) :: acc) n.hi (go ((n.var, false) :: acc) n.lo k)
  in
  go [] f []

let pp ?(max_cubes = 8) ppf f =
  match f with
  | Zero -> Format.fprintf ppf "false"
  | One -> Format.fprintf ppf "true"
  | Node _ ->
    let cubes = all_sat f in
    let shown = List.filteri (fun i _ -> i < max_cubes) cubes in
    let pp_lit ppf (v, b) = Format.fprintf ppf "%sx%d" (if b then "" else "~") v in
    let pp_cube ppf cube =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ".")
        pp_lit ppf cube
    in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
      pp_cube ppf shown;
    if List.length cubes > max_cubes then Format.fprintf ppf " + ..."

let to_dot ppf f =
  let seen = Hashtbl.create 64 in
  Format.fprintf ppf "digraph bdd {@.";
  Format.fprintf ppf "  n0 [label=\"0\",shape=box];@.";
  Format.fprintf ppf "  n1 [label=\"1\",shape=box];@.";
  let rec go f =
    match f with
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        Format.fprintf ppf "  n%d [label=\"x%d\"];@." n.id n.var;
        Format.fprintf ppf "  n%d -> n%d [style=dashed];@." n.id (id n.lo);
        Format.fprintf ppf "  n%d -> n%d;@." n.id (id n.hi);
        go n.lo;
        go n.hi
      end
  in
  go f;
  Format.fprintf ppf "}@."

(* [size_at_most f k] is [Some n] when the DAG has n <= k nodes, [None]
   otherwise; the walk aborts as soon as the bound is exceeded, so probing
   a huge function for smallness is cheap. *)
let size_at_most f k =
  let seen = Hashtbl.create 64 in
  let exception Too_big in
  let count = ref 0 in
  let rec go f =
    match f with
    | Node.Zero | Node.One -> ()
    | Node.Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        incr count;
        if !count > k then raise Too_big;
        Hashtbl.add seen n.id ();
        go n.lo;
        go n.hi
      end
  in
  match go f with () -> Some !count | exception Too_big -> None
