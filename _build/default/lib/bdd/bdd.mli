(** Reduced ordered binary decision diagrams.

    A from-scratch ROBDD package in the style of the "BDD package developed
    at Eindhoven University" used by the paper: hash-consed nodes owned by a
    manager, memoized Boolean operations, quantification, composition,
    generalized cofactors, and rebuild-based variable reordering.

    Within one manager, two BDDs are semantically equal iff they are
    physically equal ([==]); {!equal} exposes this test. *)

type manager
(** Mutable owner of a node universe: unique table, operation caches and the
    global variable order. *)

type t
(** A BDD node.  Valid only together with the manager that created it. *)

(** {1 Managers and variables} *)

val create : ?cache_size:int -> unit -> manager
(** Fresh manager with the identity variable order. *)

val clear_caches : manager -> unit
(** Drop all memoization tables (the unique table is kept). *)

val memo_entries : manager -> int
(** Total entries across the operation caches; callers with memory budgets
    can {!clear_caches} when this grows too large. *)

exception Limit_exceeded
(** Raised by any operation that would grow the unique table beyond the
    manager's node limit — a hard memory budget enforced even inside a
    single long-running operation. *)

val set_node_limit : manager -> int -> unit
(** Install the budget ([max_int] initially). *)

val nvars : manager -> int
(** Number of variables known to the manager. *)

val live_nodes : manager -> int
(** Number of distinct nodes currently in the unique table; the "BDD nodes"
    statistic of the paper's Table 1. *)

val made_nodes : manager -> int
(** Total number of nodes ever created: a monotone work/peak measure. *)

val var : manager -> int -> t
(** [var m i] is the function of the i-th variable (created on demand). *)

val nvar : manager -> int -> t
(** [nvar m i] is the complement of variable [i]. *)

val level : manager -> int -> int
(** Current level (position in the order) of a variable. *)

(** {1 Constants and tests} *)

val one : t
val zero : t
val is_true : t -> bool
val is_false : t -> bool

val equal : t -> t -> bool
(** Physical equality; equivalent to semantic equality within one manager. *)

val id : t -> int
(** Unique id of a node within its manager (usable as a hash key). *)

(** {1 Boolean connectives} *)

val mk_not : manager -> t -> t
val mk_and : manager -> t -> t -> t
val mk_or : manager -> t -> t -> t
val mk_xor : manager -> t -> t -> t
val mk_xnor : manager -> t -> t -> t
val mk_nand : manager -> t -> t -> t
val mk_nor : manager -> t -> t -> t
val mk_imp : manager -> t -> t -> t
val mk_iff : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t
val big_and : manager -> t list -> t
val big_or : manager -> t list -> t

val cube : manager -> (int * bool) list -> t
(** Conjunction of literals. *)

(** {1 Cofactors, quantification, composition} *)

val cofactor : manager -> t -> int -> bool -> t
(** [cofactor m f v b] restricts variable [v] to constant [b]. *)

val exists : manager -> int list -> t -> t
val forall : manager -> int list -> t -> t

val and_exists : manager -> int list -> t -> t -> t
(** [and_exists m vars f g] = [exists m vars (mk_and m f g)], computed
    without building the full conjunction: the relational-product core of
    symbolic image computation. *)

val compose : manager -> t -> int -> t -> t
(** [compose m f v g] substitutes function [g] for variable [v] in [f]. *)

val vector_compose : manager -> t -> t option array -> t
(** Simultaneous substitution; [subst.(v) = Some g] replaces variable [v]
    by [g], [None] (or out of range) leaves it unchanged. *)

val rename : manager -> t -> (int * int) list -> t
(** Variable renaming (special case of vector composition). *)

val constrain : manager -> t -> t -> t
(** Generalized cofactor: [constrain m f c] agrees with [f] on [c] and is
    chosen by the Coudert–Madre mapping elsewhere.
    @raise Invalid_argument if the care set is [zero]. *)

val restrict : manager -> t -> care:t -> t
(** Coudert–Madre restrict: simplify [f] using the complement of [care] as
    don't-cares; the result agrees with [f] wherever [care] holds and never
    has larger support.  This is the don't-care mechanism of the paper's
    Section 4.
    @raise Invalid_argument if the care set is [zero]. *)

(** {1 Analysis} *)

val support : t -> int list
(** Sorted list of variables the function depends on. *)

val size : t -> int
(** Number of internal nodes of the DAG rooted here. *)

val size_list : t list -> int
(** Shared node count of a set of roots. *)

val size_at_most : t -> int -> int option
(** [size_at_most f k] is [Some n] when the DAG has [n <= k] nodes, [None]
    otherwise; aborts early, so probing a huge function is cheap. *)

val eval : t -> (int -> bool) -> bool

val sat_count : manager -> nvars:int -> t -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : t -> (int * bool) list option
(** One satisfying partial assignment, or [None] when unsatisfiable. *)

val all_sat : t -> (int * bool) list list
(** Every satisfying path as a partial cube (tests / small functions). *)

val pp : ?max_cubes:int -> Format.formatter -> t -> unit
val to_dot : Format.formatter -> t -> unit

(** {1 Variable ordering} *)

module Reorder : sig
  val copy_to : dst:manager -> t list -> t list
  (** Rebuild roots inside another manager (any variable order). *)

  val manager_with_order : int array -> manager
  (** Manager where variable [order.(i)] sits at level [i]. *)

  val with_order : order:int array -> t list -> manager * t list
  (** Fresh manager with the given order plus the rebuilt roots. *)

  val interleave : int list list -> int list
  (** Interleave variable groups round-robin; the classical order for
      product machines (spec/impl state bits alternating). *)

  val sift : ?max_passes:int -> manager -> t list -> manager * t list
  (** Greedy adjacent-swap improvement by rebuilding; returns the manager
      and roots of the best order found. *)
end
