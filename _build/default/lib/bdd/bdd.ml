(* Public flat API of the BDD package; see bdd.mli. *)

type manager = Node.manager
type t = Node.t

let create = Node.create
let clear_caches = Node.clear_caches
let nvars = Node.nvars
let live_nodes = Node.live_nodes
let made_nodes = Node.made_nodes
let var = Node.var
let nvar = Node.nvar
let level = Node.level
let one = Node.One
let zero = Node.Zero
let is_true f = f == Node.One
let is_false f = f == Node.Zero
let equal (a : t) (b : t) = a == b
let id = Node.id

let mk_not = Ops.mk_not
let mk_and = Ops.mk_and
let mk_or = Ops.mk_or
let mk_xor = Ops.mk_xor
let mk_xnor = Ops.mk_xnor
let mk_nand = Ops.mk_nand
let mk_nor = Ops.mk_nor
let mk_imp = Ops.mk_imp
let mk_iff = Ops.mk_iff
let ite = Ops.ite
let big_and = Ops.big_and
let big_or = Ops.big_or
let cube = Ops.cube

let cofactor = Ops.cofactor
let exists = Ops.exists
let forall = Ops.forall
let and_exists = Ops.and_exists
let compose = Ops.compose
let vector_compose = Ops.vector_compose
let rename = Ops.rename
let constrain = Ops.constrain
let restrict = Ops.restrict

let support = Analyze.support
let size = Analyze.size
let size_list = Analyze.size_list
let eval = Analyze.eval
let sat_count = Analyze.sat_count
let any_sat = Analyze.any_sat
let all_sat = Analyze.all_sat
let pp = Analyze.pp
let to_dot = Analyze.to_dot

module Reorder = Reorder
let size_at_most = Analyze.size_at_most
let memo_entries = Node.memo_entries

exception Limit_exceeded = Node.Limit_exceeded

let set_node_limit = Node.set_node_limit
