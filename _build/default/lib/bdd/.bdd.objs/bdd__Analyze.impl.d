lib/bdd/analyze.ml: Format Hashtbl List Node
