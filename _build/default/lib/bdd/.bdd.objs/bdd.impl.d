lib/bdd/bdd.ml: Analyze Node Ops Reorder
