lib/bdd/bdd.mli: Format
