lib/bdd/reorder.ml: Analyze Array Hashtbl List Node Ops
