lib/bdd/node.ml: Array Hashtbl
