lib/bdd/ops.ml: Array Hashtbl List Node
