(* Variable (re)ordering.

   Nodes are immutable, so reordering is performed by rebuilding root
   functions inside a fresh manager that carries the new order.  This is
   the honest substitute for in-place dynamic sifting documented in
   DESIGN.md: a static order good for circuits (interleaving related
   variable groups) plus an optional greedy improvement pass. *)

open Node

(* Rebuild [roots] inside [dst]; [dst] may use any variable order. *)
let copy_to ~dst roots =
  let memo = Hashtbl.create 1024 in
  let rec go f =
    match f with
    | Zero -> Zero
    | One -> One
    | Node n -> (
      match Hashtbl.find_opt memo n.id with
      | Some r -> r
      | None ->
        let lo = go n.lo and hi = go n.hi in
        let r = Ops.ite dst (Node.var dst n.var) hi lo in
        Hashtbl.add memo n.id r;
        r)
  in
  List.map go roots

(* Fresh manager whose order places variable [order.(i)] at level [i]. *)
let manager_with_order order =
  let dst = create () in
  let n = Array.length order in
  ensure_var dst (n - 1);
  let levels = Array.make n 0 in
  Array.iteri (fun lv v -> levels.(v) <- lv) order;
  set_level_of_var dst levels;
  dst

let with_order ~order roots =
  let dst = manager_with_order order in
  (dst, copy_to ~dst roots)

(* Interleave k groups of variables: [ [a0;a1]; [b0;b1] ] gives the order
   a0 b0 a1 b1.  Used to interleave specification and implementation state
   variables, the classical good order for product machines. *)
let interleave groups =
  let rec round acc groups =
    let heads, tails =
      List.fold_right
        (fun g (hs, ts) ->
          match g with [] -> (hs, ts) | h :: t -> (h :: hs, t :: ts))
        groups ([], [])
    in
    match heads with
    | [] -> List.rev acc
    | _ -> round (List.rev_append heads acc) tails
  in
  round [] groups

(* Greedy sifting-by-rebuild: repeatedly try swapping adjacent levels and
   keep a swap when it shrinks the shared size of the roots.  [max_passes]
   bounds the cost; each accepted or rejected swap is a full rebuild. *)
let sift ?(max_passes = 1) m roots =
  let n = nvars m in
  if n <= 1 then (m, roots)
  else begin
    let current_order =
      let order = Array.make n 0 in
      for v = 0 to n - 1 do
        order.(level m v) <- v
      done;
      order
    in
    let best_m = ref m and best_roots = ref roots in
    let best_size = ref (Analyze.size_list roots) in
    for _pass = 1 to max_passes do
      for lv = 0 to n - 2 do
        let order = Array.copy current_order in
        let tmp = order.(lv) in
        order.(lv) <- order.(lv + 1);
        order.(lv + 1) <- tmp;
        let m', roots' = with_order ~order !best_roots in
        let size' = Analyze.size_list roots' in
        if size' < !best_size then begin
          best_m := m';
          best_roots := roots';
          best_size := size';
          Array.blit order 0 current_order 0 n
        end
      done
    done;
    (!best_m, !best_roots)
  end
