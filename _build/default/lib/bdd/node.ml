(* Hash-consed ROBDD nodes and the manager that owns them.

   Nodes are immutable and unique within a manager: two nodes of the same
   manager are semantically equal iff they are physically equal.  The
   branching order is given by [level_of_var]; the variable with the
   smallest level is tested first.  Terminals [Zero]/[One] sit below every
   variable (conceptual level [max_int]). *)

type t =
  | Zero
  | One
  | Node of { var : int; lo : t; hi : t; id : int }

exception Limit_exceeded

type manager = {
  unique : (int * int * int, t) Hashtbl.t;
  mutable node_limit : int;
  mutable next_id : int;
  mutable level_of_var : int array;
  mutable nvars : int;
  and_memo : (int * int, t) Hashtbl.t;
  or_memo : (int * int, t) Hashtbl.t;
  xor_memo : (int * int, t) Hashtbl.t;
  not_memo : (int, t) Hashtbl.t;
  ite_memo : (int * int * int, t) Hashtbl.t;
  mutable nodes_made : int;
}

let id = function Zero -> 0 | One -> 1 | Node n -> n.id

let create ?(cache_size = 1 lsl 14) () =
  {
    unique = Hashtbl.create cache_size;
    node_limit = max_int;
    next_id = 2;
    level_of_var = Array.make 16 0;
    nvars = 0;
    and_memo = Hashtbl.create cache_size;
    or_memo = Hashtbl.create cache_size;
    xor_memo = Hashtbl.create cache_size;
    not_memo = Hashtbl.create cache_size;
    ite_memo = Hashtbl.create cache_size;
    nodes_made = 0;
  }

let clear_caches m =
  Hashtbl.reset m.and_memo;
  Hashtbl.reset m.or_memo;
  Hashtbl.reset m.xor_memo;
  Hashtbl.reset m.not_memo;
  Hashtbl.reset m.ite_memo

let nvars m = m.nvars

(* Grow the level table so that variable [v] exists; fresh variables are
   appended at the bottom of the current order. *)
let ensure_var m v =
  if v < 0 then invalid_arg "Bdd: negative variable";
  if v >= m.nvars then begin
    let needed = v + 1 in
    if needed > Array.length m.level_of_var then begin
      let bigger = Array.make (max needed (2 * Array.length m.level_of_var)) 0 in
      Array.blit m.level_of_var 0 bigger 0 m.nvars;
      m.level_of_var <- bigger
    end;
    for i = m.nvars to v do
      m.level_of_var.(i) <- i
    done;
    m.nvars <- needed
  end

let level m v = m.level_of_var.(v)
let terminal_level = max_int

let top_level m = function
  | Zero | One -> terminal_level
  | Node n -> level m n.var

let top_var = function Zero | One -> -1 | Node n -> n.var

(* The single node constructor: enforces reduction (no redundant test) and
   uniqueness (hash-consing). *)
let mk m ~var ~lo ~hi =
  if lo == hi then lo
  else begin
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if Hashtbl.length m.unique >= m.node_limit then raise Limit_exceeded;
      let n = Node { var; lo; hi; id = m.next_id } in
      m.next_id <- m.next_id + 1;
      m.nodes_made <- m.nodes_made + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m v =
  ensure_var m v;
  mk m ~var:v ~lo:Zero ~hi:One

let nvar m v =
  ensure_var m v;
  mk m ~var:v ~lo:One ~hi:Zero

(* Cofactors of [f] with respect to the variable at level [lv]; identity
   when [f] does not test that level at its root. *)
let cofactors m f lv =
  match f with
  | Zero | One -> (f, f)
  | Node n -> if level m n.var = lv then (n.lo, n.hi) else (f, f)

let live_nodes m = Hashtbl.length m.unique
let made_nodes m = m.nodes_made

(* Install a new global order.  Only callers that subsequently rebuild all
   their roots (see {!Reorder}) may use this; existing nodes built under the
   old order keep their structure and become stale. *)
let set_level_of_var m levels =
  if Array.length levels <> m.nvars then
    invalid_arg "Bdd: set_level_of_var: wrong length";
  Array.blit levels 0 m.level_of_var 0 m.nvars

let set_node_limit m limit = m.node_limit <- limit

let memo_entries m =
  Hashtbl.length m.and_memo + Hashtbl.length m.or_memo + Hashtbl.length m.xor_memo
  + Hashtbl.length m.not_memo + Hashtbl.length m.ite_memo
