(* Boolean operations on ROBDDs.  Binary operations recurse on the topmost
   level of their operands with global memoization; traversal-style
   operations (quantification, composition, restrict) use a per-call memo
   table keyed by node ids. *)

open Node

let rec mk_not m f =
  match f with
  | Zero -> One
  | One -> Zero
  | Node n -> (
    match Hashtbl.find_opt m.not_memo n.id with
    | Some r -> r
    | None ->
      let r = mk m ~var:n.var ~lo:(mk_not m n.lo) ~hi:(mk_not m n.hi) in
      Hashtbl.add m.not_memo n.id r;
      r)

let ordered_key a b =
  let ia = id a and ib = id b in
  if ia <= ib then (ia, ib) else (ib, ia)

let rec mk_and m f g =
  match (f, g) with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | _ when f == g -> f
  | _ ->
    let key = ordered_key f g in
    (match Hashtbl.find_opt m.and_memo key with
    | Some r -> r
    | None ->
      let lv = min (top_level m f) (top_level m g) in
      let f0, f1 = cofactors m f lv and g0, g1 = cofactors m g lv in
      let v = if top_level m f = lv then top_var f else top_var g in
      let r = mk m ~var:v ~lo:(mk_and m f0 g0) ~hi:(mk_and m f1 g1) in
      Hashtbl.add m.and_memo key r;
      r)

let rec mk_or m f g =
  match (f, g) with
  | One, _ | _, One -> One
  | Zero, x | x, Zero -> x
  | _ when f == g -> f
  | _ ->
    let key = ordered_key f g in
    (match Hashtbl.find_opt m.or_memo key with
    | Some r -> r
    | None ->
      let lv = min (top_level m f) (top_level m g) in
      let f0, f1 = cofactors m f lv and g0, g1 = cofactors m g lv in
      let v = if top_level m f = lv then top_var f else top_var g in
      let r = mk m ~var:v ~lo:(mk_or m f0 g0) ~hi:(mk_or m f1 g1) in
      Hashtbl.add m.or_memo key r;
      r)

let rec mk_xor m f g =
  match (f, g) with
  | Zero, x | x, Zero -> x
  | One, x | x, One -> mk_not m x
  | _ when f == g -> Zero
  | _ ->
    let key = ordered_key f g in
    (match Hashtbl.find_opt m.xor_memo key with
    | Some r -> r
    | None ->
      let lv = min (top_level m f) (top_level m g) in
      let f0, f1 = cofactors m f lv and g0, g1 = cofactors m g lv in
      let v = if top_level m f = lv then top_var f else top_var g in
      let r = mk m ~var:v ~lo:(mk_xor m f0 g0) ~hi:(mk_xor m f1 g1) in
      Hashtbl.add m.xor_memo key r;
      r)

let mk_nand m f g = mk_not m (mk_and m f g)
let mk_nor m f g = mk_not m (mk_or m f g)
let mk_xnor m f g = mk_not m (mk_xor m f g)
let mk_imp m f g = mk_or m (mk_not m f) g
let mk_iff = mk_xnor

let rec ite m f g h =
  match f with
  | One -> g
  | Zero -> h
  | Node _ -> (
    if g == h then g
    else if g == One && h == Zero then f
    else if g == Zero && h == One then mk_not m f
    else
      let key = (id f, id g, id h) in
      match Hashtbl.find_opt m.ite_memo key with
      | Some r -> r
      | None ->
        let lv = min (top_level m f) (min (top_level m g) (top_level m h)) in
        let f0, f1 = cofactors m f lv
        and g0, g1 = cofactors m g lv
        and h0, h1 = cofactors m h lv in
        let v =
          if top_level m f = lv then top_var f
          else if top_level m g = lv then top_var g
          else top_var h
        in
        let r = mk m ~var:v ~lo:(ite m f0 g0 h0) ~hi:(ite m f1 g1 h1) in
        Hashtbl.add m.ite_memo key r;
        r)

(* Restrict a single variable to a constant. *)
let cofactor m f v value =
  ensure_var m v;
  let lv = level m v in
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f with
    | Zero | One -> f
    | Node n ->
      if level m n.var > lv then f
      else if level m n.var = lv then if value then n.hi else n.lo
      else begin
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
          let r = mk m ~var:n.var ~lo:(go n.lo) ~hi:(go n.hi) in
          Hashtbl.add memo n.id r;
          r
      end
  in
  go f

let quantify m ~merge vars f =
  let in_set = Hashtbl.create 16 in
  List.iter
    (fun v ->
      ensure_var m v;
      Hashtbl.replace in_set v ())
    vars;
  let memo = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Zero | One -> f
    | Node n -> (
      match Hashtbl.find_opt memo n.id with
      | Some r -> r
      | None ->
        let lo = go n.lo and hi = go n.hi in
        let r =
          if Hashtbl.mem in_set n.var then merge m lo hi
          else mk m ~var:n.var ~lo ~hi
        in
        Hashtbl.add memo n.id r;
        r)
  in
  go f

let exists m vars f = quantify m ~merge:mk_or vars f
let forall m vars f = quantify m ~merge:mk_and vars f

(* exists vars (f /\ g), the workhorse of image computation.  Conjunction
   and quantification are interleaved so the full conjunction is never
   built when a branch collapses early. *)
let and_exists m vars f g =
  let in_set = Hashtbl.create 16 in
  List.iter
    (fun v ->
      ensure_var m v;
      Hashtbl.replace in_set v ())
    vars;
  let memo = Hashtbl.create 1024 in
  let rec go f g =
    match (f, g) with
    | Zero, _ | _, Zero -> Zero
    | One, One -> One
    | _ ->
      let f, g = if id f <= id g then (f, g) else (g, f) in
      begin
        let key = (id f, id g) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
          let lv = min (top_level m f) (top_level m g) in
          let f0, f1 = cofactors m f lv and g0, g1 = cofactors m g lv in
          let v = if top_level m f = lv then top_var f else top_var g in
          let r =
            if Hashtbl.mem in_set v then
              let lo = go f0 g0 in
              if lo == One then One else mk_or m lo (go f1 g1)
            else mk m ~var:v ~lo:(go f0 g0) ~hi:(go f1 g1)
          in
          Hashtbl.add memo key r;
          r
      end
  in
  go f g

let compose m f v g =
  ensure_var m v;
  let lv = level m v in
  let memo = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Zero | One -> f
    | Node n ->
      if level m n.var > lv then f
      else if level m n.var = lv then ite m g n.hi n.lo
      else begin
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
          let lo = go n.lo and hi = go n.hi in
          (* [g] may mention variables ordered above [n.var]; rebuilding
             through [ite] keeps the result canonical in every case. *)
          let r = ite m (var m n.var) hi lo in
          Hashtbl.add memo n.id r;
          r
      end
  in
  go f

let vector_compose m f subst =
  let memo = Hashtbl.create 1024 in
  let rec go f =
    match f with
    | Zero | One -> f
    | Node n -> (
      match Hashtbl.find_opt memo n.id with
      | Some r -> r
      | None ->
        let lo = go n.lo and hi = go n.hi in
        let gv =
          if n.var < Array.length subst then
            match subst.(n.var) with Some g -> g | None -> var m n.var
          else var m n.var
        in
        let r = ite m gv hi lo in
        Hashtbl.add memo n.id r;
        r)
  in
  go f

let constrain m f c =
  if c == Zero then invalid_arg "Bdd.constrain: empty care set";
  let memo = Hashtbl.create 256 in
  let rec go f c =
    if c == One then f
    else
      match f with
      | Zero | One -> f
      | Node _ when f == c -> One
      | Node _ -> (
        let key = (id f, id c) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
          let lv = min (top_level m f) (top_level m c) in
          let f0, f1 = cofactors m f lv and c0, c1 = cofactors m c lv in
          let v = if top_level m f = lv then top_var f else top_var c in
          let r =
            if c1 == Zero then go f0 c0
            else if c0 == Zero then go f1 c1
            else mk m ~var:v ~lo:(go f0 c0) ~hi:(go f1 c1)
          in
          Hashtbl.add memo key r;
          r)
  in
  go f c

let restrict m f ~care =
  if care == Zero then invalid_arg "Bdd.restrict: empty care set";
  let memo = Hashtbl.create 256 in
  let rec go f c =
    if c == One then f
    else
      match f with
      | Zero | One -> f
      | Node _ when f == c -> One
      | Node _ -> (
        let key = (id f, id c) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
          let lvf = top_level m f and lvc = top_level m c in
          let r =
            if lvc < lvf then
              (* the care set tests a variable [f] ignores: drop it *)
              let c0, c1 = cofactors m c lvc in
              go f (mk_or m c0 c1)
            else begin
              let lv = lvf in
              let f0, f1 = cofactors m f lv and c0, c1 = cofactors m c lv in
              if c1 == Zero then go f0 c0
              else if c0 == Zero then go f1 c1
              else mk m ~var:(top_var f) ~lo:(go f0 c0) ~hi:(go f1 c1)
            end
          in
          Hashtbl.add memo key r;
          r)
  in
  go f care

(* Rename variables according to [perm] (an association list old -> new).
   Implemented through vector composition, so it is safe even when the
   renaming is not order-preserving. *)
let rename m f perm =
  let max_var = List.fold_left (fun acc (o, _) -> max acc o) (-1) perm in
  let subst = Array.make (max_var + 1) None in
  List.iter (fun (o, n) -> subst.(o) <- Some (var m n)) perm;
  vector_compose m f subst

let big_and m fs = List.fold_left (mk_and m) One fs
let big_or m fs = List.fold_left (mk_or m) Zero fs

let cube m lits =
  List.fold_left
    (fun acc (v, value) ->
      let lit = if value then var m v else nvar m v in
      mk_and m acc lit)
    One lits
