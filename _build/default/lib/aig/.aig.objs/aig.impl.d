lib/aig/aig.ml: Aiger Asim Cnf Graph Of_netlist
