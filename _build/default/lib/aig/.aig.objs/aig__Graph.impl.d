lib/aig/graph.ml: Array Format Hashtbl List Printf
