lib/aig/aiger.ml: Array Buffer Char Graph Hashtbl List Printf String
