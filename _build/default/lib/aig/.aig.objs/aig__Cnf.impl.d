lib/aig/cnf.ml: Array Graph Sat
