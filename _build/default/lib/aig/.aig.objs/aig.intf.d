lib/aig/aig.mli: Format Netlist Sat
