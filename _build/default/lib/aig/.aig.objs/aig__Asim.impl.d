lib/aig/asim.ml: Array Graph Int64 List Random
