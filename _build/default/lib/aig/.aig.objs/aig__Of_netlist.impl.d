lib/aig/of_netlist.ml: Array Graph List Netlist
