(* And-Inverter Graphs with structural hashing.

   Literals follow the AIGER convention: literal [2n] is node [n], literal
   [2n+1] its complement; node 0 is the constant false, so literal 0 is
   false and literal 1 is true.  AND nodes store normalized fanin literals
   (smaller first), and the structural hash guarantees that no two distinct
   AND nodes have the same fanins.  All sequential algorithms of the
   library (signal correspondence, traversal, fraiging) run on this
   representation. *)

type node =
  | Const
  | Pi of int (* primary-input index *)
  | Latch of int (* latch index *)
  | And of int * int (* fanin literals, fst <= snd *)

type latch_info = { node_id : int; mutable next : int; init : bool }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable rev_pis : int list; (* node ids *)
  mutable lat : latch_info array;
  mutable n_latches : int;
  mutable rev_pos : (string * int) list; (* name, literal *)
  strash : (int * int, int) Hashtbl.t;
}

(* --- literals ------------------------------------------------------------ *)

let lit_of_node n = 2 * n
let node_of_lit l = l lsr 1
let lit_is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_false = 0
let lit_true = 1

(* --- construction --------------------------------------------------------- *)

let create () =
  {
    nodes = Array.make 64 Const;
    n = 1;
    (* node 0 is the constant *)
    rev_pis = [];
    lat = Array.make 8 { node_id = -1; next = 0; init = false };
    n_latches = 0;
    rev_pos = [];
    strash = Hashtbl.create 1024;
  }

let fresh t node =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) Const in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let add_pi t =
  let idx = List.length t.rev_pis in
  let id = fresh t (Pi idx) in
  t.rev_pis <- id :: t.rev_pis;
  lit_of_node id

let add_latch t ~init =
  let idx = t.n_latches in
  let id = fresh t (Latch idx) in
  if t.n_latches = Array.length t.lat then begin
    let bigger = Array.make (2 * t.n_latches) t.lat.(0) in
    Array.blit t.lat 0 bigger 0 t.n_latches;
    t.lat <- bigger
  end;
  t.lat.(idx) <- { node_id = id; next = -1; init };
  t.n_latches <- t.n_latches + 1;
  lit_of_node id

let set_latch_next t lit ~next =
  let id = node_of_lit lit in
  if lit_is_compl lit then invalid_arg "Aig.set_latch_next: complemented latch literal";
  match t.nodes.(id) with
  | Latch idx -> t.lat.(idx).next <- next
  | Const | Pi _ | And _ -> invalid_arg "Aig.set_latch_next: not a latch"

let mk_and t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = lit_not b then lit_false
  else begin
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> lit_of_node id
    | None ->
      let id = fresh t (And (a, b)) in
      Hashtbl.add t.strash (a, b) id;
      lit_of_node id
  end

let mk_or t a b = lit_not (mk_and t (lit_not a) (lit_not b))
let mk_xor t a b = mk_or t (mk_and t a (lit_not b)) (mk_and t (lit_not a) b)
let mk_xnor t a b = lit_not (mk_xor t a b)
let mk_mux t ~sel ~t1 ~t0 = mk_or t (mk_and t sel t1) (mk_and t (lit_not sel) t0)
let mk_ands t lits = List.fold_left (mk_and t) lit_true lits
let mk_ors t lits = List.fold_left (mk_or t) lit_false lits

let add_po t name lit = t.rev_pos <- (name, lit) :: t.rev_pos

(* --- accessors ------------------------------------------------------------ *)

let num_nodes t = t.n
let num_pis t = List.length t.rev_pis
let num_latches t = t.n_latches
let node t id = t.nodes.(id)
let pis t = List.rev t.rev_pis
let pos t = List.rev t.rev_pos
let latch_ids t = List.init t.n_latches (fun i -> t.lat.(i).node_id)
let latch_next t i = t.lat.(i).next
let latch_init t i = t.lat.(i).init
let latch_node t i = t.lat.(i).node_id

let num_ands t =
  let count = ref 0 in
  for id = 0 to t.n - 1 do
    match t.nodes.(id) with And _ -> incr count | Const | Pi _ | Latch _ -> ()
  done;
  !count

let pi_index t id =
  match t.nodes.(id) with
  | Pi i -> i
  | Const | Latch _ | And _ -> invalid_arg "Aig.pi_index"

let latch_index t id =
  match t.nodes.(id) with
  | Latch i -> i
  | Const | Pi _ | And _ -> invalid_arg "Aig.latch_index"

let validate t =
  try
    for i = 0 to t.n_latches - 1 do
      if t.lat.(i).next < 0 then failwith (Printf.sprintf "latch %d has no next-state" i)
    done;
    for id = 1 to t.n - 1 do
      match t.nodes.(id) with
      | And (a, b) ->
        if node_of_lit a >= id || node_of_lit b >= id then
          failwith (Printf.sprintf "and node %d references a later node" id)
      | Const | Pi _ | Latch _ -> ()
    done;
    Ok ()
  with Failure msg -> Error msg

(* --- generic copy --------------------------------------------------------- *)

(* Copy the combinational structure of [src] into [dst]: PIs and latches of
   [src] are mapped through the supplied functions, AND nodes are rebuilt
   (and therefore re-hashed) in [dst].  Returns a translator for [src]
   literals.  Latch next-state functions and POs are not transferred. *)
let copy_into dst ~src ~pi_lit ~latch_lit =
  let map = Array.make src.n (-1) in
  map.(0) <- 0;
  for id = 1 to src.n - 1 do
    map.(id) <-
      (match src.nodes.(id) with
      | Const -> 0
      | Pi i -> pi_lit i
      | Latch i -> latch_lit i
      | And (a, b) ->
        let tr l = map.(node_of_lit l) lxor (l land 1) in
        mk_and dst (tr a) (tr b))
  done;
  fun l ->
    if node_of_lit l >= src.n then invalid_arg "Aig.copy_into: foreign literal"
    else map.(node_of_lit l) lxor (l land 1)

(* Structural cleanup: keep only nodes reachable from the POs, where a
   reached latch also pulls in its next-state cone (sequential
   reachability of logic, not of states).  PIs are always kept so the
   interface is stable; unused latches are garbage collected. *)
let cleanup t =
  let reachable = Array.make t.n false in
  reachable.(0) <- true;
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      match t.nodes.(id) with
      | And (a, b) ->
        mark (node_of_lit a);
        mark (node_of_lit b)
      | Latch i -> mark (node_of_lit t.lat.(i).next)
      | Const | Pi _ -> ()
    end
  in
  List.iter mark (List.rev t.rev_pis);
  List.iter (fun (_, l) -> mark (node_of_lit l)) t.rev_pos;
  let fresh_aig = create () in
  let map = Array.make t.n (-1) in
  map.(0) <- 0;
  for id = 1 to t.n - 1 do
    if reachable.(id) then
      map.(id) <-
        (match t.nodes.(id) with
        | Const -> 0
        | Pi _ -> add_pi fresh_aig
        | Latch i -> add_latch fresh_aig ~init:t.lat.(i).init
        | And (a, b) ->
          let tr l = map.(node_of_lit l) lxor (l land 1) in
          mk_and fresh_aig (tr a) (tr b))
  done;
  let tr l = map.(node_of_lit l) lxor (l land 1) in
  for i = 0 to t.n_latches - 1 do
    let info = t.lat.(i) in
    if reachable.(info.node_id) then
      set_latch_next fresh_aig map.(info.node_id) ~next:(tr info.next)
  done;
  List.iter (fun (name, l) -> add_po fresh_aig name (tr l)) (List.rev t.rev_pos);
  (fresh_aig, tr)

let pp_stats ppf t =
  Format.fprintf ppf "aig: %d pis, %d pos, %d latches, %d ands" (num_pis t)
    (List.length t.rev_pos) t.n_latches (num_ands t)
