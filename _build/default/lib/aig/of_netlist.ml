(* Conversion of gate-level netlists into structurally hashed AIGs.
   Multi-input gates are decomposed into balanced AND/XOR trees. *)

let rec balanced_fold f = function
  | [] -> invalid_arg "balanced_fold: empty"
  | [ x ] -> x
  | xs ->
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (k - 1) (x :: acc) rest
    in
    let left, right = split (List.length xs / 2) [] xs in
    f (balanced_fold f left) (balanced_fold f right)

(* Returns the AIG plus the literal of every netlist net. *)
let convert c =
  let t = Graph.create () in
  let lit_of = Array.make (Netlist.num_nets c) (-1) in
  List.iter (fun net -> lit_of.(net) <- Graph.add_pi t) (Netlist.inputs c);
  List.iter
    (fun net -> lit_of.(net) <- Graph.add_latch t ~init:(Netlist.latch_init c net))
    (Netlist.latches c);
  List.iter
    (fun net ->
      match Netlist.node c net with
      | Netlist.Input | Netlist.Latch _ -> ()
      | Netlist.Gate (fn, fanins) ->
        let ins = Array.to_list (Array.map (fun f -> lit_of.(f)) fanins) in
        let aig_and a b = Graph.mk_and t a b in
        let aig_xor a b = Graph.mk_xor t a b in
        lit_of.(net) <-
          (match fn with
          | Netlist.And -> balanced_fold aig_and ins
          | Netlist.Nand -> Graph.lit_not (balanced_fold aig_and ins)
          | Netlist.Or -> Graph.lit_not (balanced_fold aig_and (List.map Graph.lit_not ins))
          | Netlist.Nor -> balanced_fold aig_and (List.map Graph.lit_not ins)
          | Netlist.Xor -> balanced_fold aig_xor ins
          | Netlist.Xnor -> Graph.lit_not (balanced_fold aig_xor ins)
          | Netlist.Not -> Graph.lit_not (List.nth ins 0)
          | Netlist.Buf -> List.nth ins 0
          | Netlist.Const0 -> Graph.lit_false
          | Netlist.Const1 -> Graph.lit_true))
    (Netlist.topo_order c);
  List.iter
    (fun latch_net ->
      Graph.set_latch_next t lit_of.(latch_net)
        ~next:lit_of.(Netlist.latch_data c latch_net))
    (Netlist.latches c);
  List.iter (fun (name, net) -> Graph.add_po t name lit_of.(net)) (Netlist.outputs c);
  (t, fun net -> lit_of.(net))
