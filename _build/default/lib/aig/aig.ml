(* Public API of the AIG library; see aig.mli. *)

include Graph

module Sim = struct
  let eval_comb = Asim.eval_comb
  let lit_word = Asim.lit_word
  let initial_latch_words = Asim.initial_latch_words
  let step = Asim.step
  let run = Asim.run
  let random_frames = Asim.random_frames
end

module Cnf = Cnf
module Aiger = Aiger

let of_netlist = Of_netlist.convert
