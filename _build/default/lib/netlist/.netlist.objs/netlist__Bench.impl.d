lib/netlist/bench.ml: Array Buffer Circuit Filename Hashtbl List Printf String
