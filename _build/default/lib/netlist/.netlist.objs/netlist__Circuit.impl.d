lib/netlist/circuit.ml: Array Format Hashtbl List Printf
