lib/netlist/netlist.ml: Bench Blif Circuit Sim Verilog
