lib/netlist/blif.ml: Array Buffer Bytes Circuit Hashtbl List Printf String
