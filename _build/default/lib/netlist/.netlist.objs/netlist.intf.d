lib/netlist/netlist.mli: Format
