lib/netlist/verilog.ml: Array Buffer Circuit List Printf String
