lib/netlist/sim.ml: Array Circuit Hashtbl Int64 List Random
