(* Bit-parallel simulation of circuits: every net carries an [int64], i.e.
   64 independent simulation patterns evaluated at once.  Used for random
   simulation seeding (paper Section 4), for testing the synthesis
   transformations, and as the reference semantics of a circuit. *)

let gate_eval fn (values : int64 array) (fanins : int array) =
  let open Int64 in
  match fn with
  | Circuit.And ->
    Array.fold_left (fun acc f -> logand acc values.(f)) minus_one fanins
  | Circuit.Or ->
    Array.fold_left (fun acc f -> logor acc values.(f)) zero fanins
  | Circuit.Nand ->
    lognot (Array.fold_left (fun acc f -> logand acc values.(f)) minus_one fanins)
  | Circuit.Nor ->
    lognot (Array.fold_left (fun acc f -> logor acc values.(f)) zero fanins)
  | Circuit.Xor ->
    Array.fold_left (fun acc f -> logxor acc values.(f)) zero fanins
  | Circuit.Xnor ->
    lognot (Array.fold_left (fun acc f -> logxor acc values.(f)) zero fanins)
  | Circuit.Not -> lognot values.(fanins.(0))
  | Circuit.Buf -> values.(fanins.(0))
  | Circuit.Const0 -> zero
  | Circuit.Const1 -> minus_one

type t = {
  circuit : Circuit.t;
  order : int list; (* topological order of gates *)
  values : int64 array; (* one word per net *)
  latch_state : (int, int64) Hashtbl.t;
}

let create circuit =
  let order =
    List.filter
      (fun net ->
        match Circuit.node circuit net with
        | Circuit.Gate _ -> true
        | Circuit.Input | Circuit.Latch _ -> false)
      (Circuit.topo_order circuit)
  in
  {
    circuit;
    order;
    values = Array.make (Circuit.num_nets circuit) 0L;
    latch_state = Hashtbl.create 16;
  }

let reset sim =
  List.iter
    (fun latch ->
      let init = Circuit.latch_init sim.circuit latch in
      Hashtbl.replace sim.latch_state latch (if init then -1L else 0L))
    (Circuit.latches sim.circuit)

(* Evaluate the combinational logic for the given input words and the
   current latch state; all net values become readable with [value]. *)
let eval_comb sim input_words =
  let inputs = Circuit.inputs sim.circuit in
  if List.length inputs <> Array.length input_words then
    invalid_arg "Sim.eval_comb: wrong number of input words";
  List.iteri (fun i net -> sim.values.(net) <- input_words.(i)) inputs;
  List.iter
    (fun latch ->
      sim.values.(latch) <-
        (match Hashtbl.find_opt sim.latch_state latch with
        | Some w -> w
        | None -> 0L))
    (Circuit.latches sim.circuit);
  List.iter
    (fun net ->
      match Circuit.node sim.circuit net with
      | Circuit.Gate (fn, fanins) -> sim.values.(net) <- gate_eval fn sim.values fanins
      | Circuit.Input | Circuit.Latch _ -> ())
    sim.order

let value sim net = sim.values.(net)

(* Advance the latches: each latch captures its data input. *)
let step sim =
  let next =
    List.map
      (fun latch -> (latch, sim.values.(Circuit.latch_data sim.circuit latch)))
      (Circuit.latches sim.circuit)
  in
  List.iter (fun (latch, w) -> Hashtbl.replace sim.latch_state latch w) next

let output_values sim =
  List.map (fun (name, net) -> (name, sim.values.(net))) (Circuit.outputs sim.circuit)

(* Run a full sequence: [stimuli] is a list of input-word frames; returns
   the output frames in order. *)
let run circuit stimuli =
  let sim = create circuit in
  reset sim;
  List.map
    (fun frame ->
      eval_comb sim frame;
      let outs = output_values sim in
      step sim;
      outs)
    stimuli

(* Deterministic pseudo-random stimuli for seeding and tests. *)
let random_stimuli ~seed ~n_inputs ~n_frames =
  let rng = Random.State.make [| seed |] in
  List.init n_frames (fun _ ->
      Array.init n_inputs (fun _ -> Random.State.int64 rng Int64.max_int))
