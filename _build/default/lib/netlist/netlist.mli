(** Gate-level sequential circuits.

    The external circuit representation: multi-input gates over named nets,
    D flip-flops with explicit initial values (the paper's Mealy FSM with a
    specified initial state), BLIF I/O and 64-way bit-parallel simulation.

    Circuits are built imperatively: allocate nets with [add_*], then close
    latch feedback with {!set_latch_data}.  {!validate} checks that the
    result is well-formed. *)

type gate_fn =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Const0
  | Const1

type node = Input | Gate of gate_fn * int array | Latch of { mutable data : int; init : bool }

type t
(** A circuit under construction or completed; nets are dense ints. *)

val create : string -> t
(** [create model_name] is an empty circuit. *)

val model : t -> string
val num_nets : t -> int
val node : t -> int -> node

(** {1 Construction} *)

val add_input : ?name:string -> t -> int
val add_gate : ?name:string -> t -> gate_fn -> int list -> int

val add_latch : ?name:string -> t -> init:bool -> int
(** Allocate a latch output net; its data input is closed later with
    {!set_latch_data}. *)

val set_latch_data : t -> int -> data:int -> unit
val add_output : t -> string -> int -> unit

val band : t -> int -> int -> int
val bor : t -> int -> int -> int
val bxor : t -> int -> int -> int
val bnot : t -> int -> int
val bmux : t -> sel:int -> t1:int -> t0:int -> int
val const0 : t -> int
val const1 : t -> int

(** {1 Naming} *)

val set_name : t -> int -> string -> unit
val name_of : t -> int -> string option
val net_of_name : t -> string -> int option

(** {1 Structure} *)

val inputs : t -> int list
(** Primary inputs in declaration order. *)

val latches : t -> int list
(** Latch output nets in declaration order. *)

val outputs : t -> (string * int) list
val latch_data : t -> int -> int
val latch_init : t -> int -> bool

val topo_order : t -> int list
(** All nets, gates after their fanins.
    @raise Failure on a combinational cycle. *)

val validate : t -> (unit, string) result
val pp_stats : Format.formatter -> t -> unit

(** {1 BLIF I/O} *)

module Blif : sig
  exception Parse_error of string

  val parse_string : string -> t
  val parse_file : string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 ISCAS'89 .bench I/O} *)

module Bench : sig
  exception Parse_error of string

  val parse_string : ?model:string -> string -> t
  (** DFF initial values are taken as 0 (the .bench convention). *)

  val parse_file : string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 Structural Verilog (write-only)} *)

module Verilog : sig
  val to_string : t -> string
  (** One module with assigns for the gates and a clocked always-block
      with reset-to-initial-value for the latches. *)

  val to_file : string -> t -> unit
end

(** {1 Bit-parallel simulation} *)

module Sim : sig
  type circuit := t

  type t
  (** Simulator state: 64 parallel patterns per net. *)

  val create : circuit -> t

  val reset : t -> unit
  (** Load every latch with its initial value (all 64 patterns alike). *)

  val eval_comb : t -> int64 array -> unit
  (** Evaluate combinational logic under the given input words (one word
      per primary input, in declaration order). *)

  val value : t -> int -> int64
  (** Word of a net after {!eval_comb}. *)

  val step : t -> unit
  (** Clock edge: latches capture their data inputs. *)

  val output_values : t -> (string * int64) list

  val run : circuit -> int64 array list -> (string * int64) list list
  (** Reset, then evaluate/step through the frames; outputs per frame. *)

  val random_stimuli : seed:int -> n_inputs:int -> n_frames:int -> int64 array list
end
