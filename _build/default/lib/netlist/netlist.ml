(* Public API of the netlist library; see netlist.mli. *)

include Circuit
module Blif = Blif
module Bench = Bench
module Verilog = Verilog
module Sim = Sim
