(* A round-robin bus arbiter over n requesters: a one-hot priority token
   ring plus per-channel grant logic — a control circuit with substantial
   register feedback, in the spirit of the mid-size ISCAS'89 entries. *)

let round_robin ?(name = "arb") n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let reqs = List.init n (fun i -> Netlist.add_input ~name:(Printf.sprintf "req%d" i) c) in
  let req = Array.of_list reqs in
  (* token: one-hot pointer to the highest-priority requester *)
  let token =
    Array.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "tok%d" i) c ~init:(i = 0))
  in
  (* grant_i = req_i and no higher-priority request, priority rotating
     from the token position *)
  let grants =
    Array.init n (fun i ->
        (* requester i wins if for some distance d, token is at (i-d) and
           requesters (i-d)..(i-1) are all idle *)
        let terms =
          List.init n (fun d ->
              let start = ((i - d) mod n + n) mod n in
              let idle =
                List.init d (fun j ->
                    Netlist.bnot c req.(((start + j) mod n + n) mod n))
              in
              Netlist.add_gate c Netlist.And (token.(start) :: req.(i) :: idle))
        in
        Netlist.add_gate c Netlist.Or terms)
  in
  (* token advances past the granted requester; stays put if no grant *)
  let any_grant = Netlist.add_gate c Netlist.Or (Array.to_list grants) in
  let no_grant = Netlist.bnot c any_grant in
  for i = 0 to n - 1 do
    let after_grant = grants.(((i - 1) mod n + n) mod n) in
    let hold = Netlist.band c no_grant token.(i) in
    Netlist.set_latch_data c token.(i) ~data:(Netlist.bor c after_grant hold);
    Netlist.add_output c (Printf.sprintf "gnt%d" i) grants.(i)
  done;
  c
