(* A reconstruction of the paper's Fig. 2 running example: a circuit and a
   retimed, logically optimized twin whose equivalence is provable by the
   partition {{f1},{f2},{f3,f6},{f4,f7},{f5}} with correspondence condition
   simplifying to (v1 \/ v2 \/ v6).

   The published scan of the figure is partially garbled, so this is a
   faithful-in-spirit reconstruction with the same shape: the
   specification computes an AND of two registered signals (v3 = v1 & v2
   driving output v4), while the implementation registers the AND one
   cycle earlier into a single latch v6 (v7 is its output gate), i.e. a
   forward retiming plus logic optimization. *)

(* Specification: latches v1 (init 1) and v2 (init 1) capture x and the
   OR of the latches; output v4 = v3 = v1 & v2. *)
let specification () =
  let c = Netlist.create "fig2_spec" in
  let x = Netlist.add_input ~name:"x" c in
  let v1 = Netlist.add_latch ~name:"v1" c ~init:true in
  let v2 = Netlist.add_latch ~name:"v2" c ~init:true in
  Netlist.set_latch_data c v1 ~data:x;
  Netlist.set_latch_data c v2 ~data:(Netlist.bor c v1 v2);
  let v3 = Netlist.band c v1 v2 in
  Netlist.set_name c v3 "v3";
  let v4 = Netlist.add_gate ~name:"v4" c Netlist.Buf [ v3 ] in
  Netlist.add_output c "out" v4;
  c

(* Implementation: the AND is retimed across the registers — latch v6
   captures x & (v1' | v2') where v1'/v2' reproduce the retimed register
   contents; after optimization only one extra latch chain remains. *)
let implementation () =
  let c = Netlist.create "fig2_impl" in
  let x = Netlist.add_input ~name:"x" c in
  let v1 = Netlist.add_latch ~name:"w1" c ~init:true in
  let v2 = Netlist.add_latch ~name:"w2" c ~init:true in
  Netlist.set_latch_data c v1 ~data:x;
  Netlist.set_latch_data c v2 ~data:(Netlist.bor c v1 v2);
  (* forward retiming of the AND: v6 captures (d_v1 & d_v2) *)
  let v6 = Netlist.add_latch ~name:"v6" c ~init:true in
  Netlist.set_latch_data c v6 ~data:(Netlist.band c x (Netlist.bor c v1 v2));
  let v7 = Netlist.add_gate ~name:"v7" c Netlist.Buf [ v6 ] in
  Netlist.add_output c "out" v7;
  c

let pair () =
  let spec, _ = Aig.of_netlist (specification ()) in
  let impl, _ = Aig.of_netlist (implementation ()) in
  (spec, impl)
