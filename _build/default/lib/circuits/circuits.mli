(** Parameterized benchmark circuits: the synthetic suite standing in for
    the ISCAS'89 benchmarks of the paper's Table 1 (see DESIGN.md for the
    substitution rationale).  All builders return well-formed netlists
    ([Netlist.validate] holds). *)

(** Counters: deep state spaces and re-encodable phase generators. *)
module Counter : sig
  val binary : ?name:string -> int -> Netlist.t
  (** n-bit binary up-counter with enable and synchronous reset; outputs
      the count bits and a carry — the s838-style deep circuit. *)

  val gray : ?name:string -> int -> Netlist.t
  (** Binary core with Gray-coded outputs. *)

  val modulo : ?name:string -> int -> Netlist.t
  (** Modulo-k counter on ceil(log2 k) bits with one-hot phase outputs;
      states k..2^n-1 are unreachable (don't-care workload). *)

  val ring : ?name:string -> int -> Netlist.t
  (** One-hot ring counter with the same phase outputs as [modulo]. *)
end

(** Shift-register-shaped datapaths. *)
module Lfsr : sig
  val fibonacci : ?name:string -> taps:int list -> int -> Netlist.t
  val crc : ?name:string -> poly:int -> int -> Netlist.t
  val shift : ?name:string -> probe:int list -> int -> Netlist.t
end

(** Control-dominated FSMs. *)
module Fsm : sig
  val traffic : ?name:string -> unit -> Netlist.t
  (** A four-state traffic-light controller. *)

  val detector : ?name:string -> onehot:bool -> bool list -> Netlist.t
  (** Serial pattern detector; [onehot] selects the state encoding, so the
      same behaviour exists in two structurally different versions. *)
end

(** Pipelined datapaths. *)
module Pipeline : sig
  val alu : ?name:string -> int -> Netlist.t
  (** Two-stage pipelined ALU (and/or/xor/add) over [width]-bit operands. *)
end

(** Round-robin arbitration. *)
module Arbiter : sig
  val round_robin : ?name:string -> int -> Netlist.t
end

(** Composite system-level blocks (the larger suite rows). *)
module Composite : sig
  val bus_controller :
    ?name:string -> timer_bits:int -> channels:int -> history:int -> unit -> Netlist.t
  (** Timer + round-robin token + grant logic + history parity alarm. *)

  val transmitter :
    ?name:string -> payload_bits:int -> crc_bits:int -> poly:int -> unit -> Netlist.t
  (** Busy FSM + payload shift register + streaming CRC. *)
end

(** The paper's Fig. 2 running example (reconstruction). *)
module Fig2 : sig
  val specification : unit -> Netlist.t
  val implementation : unit -> Netlist.t

  val pair : unit -> Aig.t * Aig.t
  (** Both sides, already converted to AIGs. *)
end

(** The Table 1 suite and the synthesis recipes that produce the
    implementations under verification. *)
module Suite : sig
  type entry = { name : string; description : string; build : unit -> Netlist.t }

  val suite : entry list
  val find : string -> entry option

  type recipe = Retime_only | Retime_opt

  val recipe_name : recipe -> string

  val implementation : recipe:recipe -> seed:int -> Aig.t -> Aig.t
  (** Apply the recipe to a specification: [Retime_only] moves registers,
      [Retime_opt] additionally rewrites, fraigs and sweeps. *)

  val aig_of : entry -> Aig.t
end
