(* Linear feedback shift registers and CRC circuits: register-rich
   datapaths with long re-convergent feedback, good retiming targets. *)

(* Fibonacci LFSR with the given tap positions (bit indices xored into the
   feedback).  The register starts at 1 (all-zero is the stuck state). *)
let fibonacci ?(name = "lfsr") ~taps n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let en = Netlist.add_input ~name:"en" c in
  let regs =
    List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "s%d" i) c ~init:(i = 0))
  in
  let arr = Array.of_list regs in
  let feedback =
    match List.map (fun t -> arr.(t)) taps with
    | [] -> invalid_arg "Lfsr.fibonacci: no taps"
    | [ t ] -> t
    | t :: rest -> List.fold_left (fun acc x -> Netlist.bxor c acc x) t rest
  in
  let nen = Netlist.bnot c en in
  for i = 0 to n - 1 do
    let shifted = if i = 0 then feedback else arr.(i - 1) in
    let d = Netlist.bor c (Netlist.band c en shifted) (Netlist.band c nen arr.(i)) in
    Netlist.set_latch_data c arr.(i) ~data:d
  done;
  Netlist.add_output c "out" arr.(n - 1);
  Netlist.add_output c "fb" feedback;
  c

(* Serial CRC: shift register with polynomial feedback xored with a data
   input — the classic serial CRC update. *)
let crc ?(name = "crc") ~poly n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let din = Netlist.add_input ~name:"din" c in
  let regs =
    List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "c%d" i) c ~init:false)
  in
  let arr = Array.of_list regs in
  let fb = Netlist.bxor c arr.(n - 1) din in
  for i = 0 to n - 1 do
    let shifted = if i = 0 then fb else arr.(i - 1) in
    let d = if i > 0 && (poly lsr i) land 1 = 1 then Netlist.bxor c shifted fb else shifted in
    Netlist.set_latch_data c arr.(i) ~data:d
  done;
  Netlist.add_output c "crc_msb" arr.(n - 1);
  Netlist.add_output c "crc_lsb" arr.(0);
  c

(* Shift register with a parity output over selected stages. *)
let shift ?(name = "shift") ~probe n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let din = Netlist.add_input ~name:"din" c in
  let regs =
    List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "z%d" i) c ~init:false)
  in
  let arr = Array.of_list regs in
  for i = 0 to n - 1 do
    Netlist.set_latch_data c arr.(i) ~data:(if i = 0 then din else arr.(i - 1))
  done;
  let parity =
    match List.map (fun i -> arr.(i)) probe with
    | [] -> Netlist.const0 c
    | [ p ] -> p
    | p :: rest -> List.fold_left (fun acc x -> Netlist.bxor c acc x) p rest
  in
  Netlist.add_output c "tap" arr.(n - 1);
  Netlist.add_output c "parity" parity;
  c
