(* Composite system-level circuits: several interacting blocks (timer,
   arbiter, channel detectors, status pipeline) wired together, giving the
   larger register counts and mixed control/datapath structure of the
   upper ISCAS'89 rows. *)

(* A small bus controller:
   - an n-bit timer counts while 'run' is high and raises 'tick' on wrap;
   - a k-channel round-robin token rotates on every tick;
   - each channel ANDs its request with the token to form a grant;
   - a grant history shift register drives a parity alarm output. *)
let bus_controller ?(name = "bus") ~timer_bits ~channels ~history () =
  let c = Netlist.create (Printf.sprintf "%s_t%d_c%d" name timer_bits channels) in
  let run = Netlist.add_input ~name:"run" c in
  let reqs =
    List.init channels (fun i -> Netlist.add_input ~name:(Printf.sprintf "req%d" i) c)
  in
  (* timer *)
  let timer =
    List.init timer_bits (fun i -> Netlist.add_latch ~name:(Printf.sprintf "t%d" i) c ~init:false)
  in
  let carry = ref run in
  List.iter
    (fun q ->
      let sum = Netlist.bxor c q !carry in
      Netlist.set_latch_data c q ~data:sum;
      carry := Netlist.band c q !carry)
    timer;
  let tick = !carry in
  Netlist.add_output c "tick" tick;
  (* token ring advanced by tick *)
  let token =
    Array.init channels (fun i ->
        Netlist.add_latch ~name:(Printf.sprintf "tok%d" i) c ~init:(i = 0))
  in
  let ntick = Netlist.bnot c tick in
  for i = 0 to channels - 1 do
    let prev = token.(((i - 1) mod channels + channels) mod channels) in
    let d = Netlist.bor c (Netlist.band c tick prev) (Netlist.band c ntick token.(i)) in
    Netlist.set_latch_data c token.(i) ~data:d
  done;
  (* grants *)
  let grants =
    List.mapi
      (fun i req ->
        let g = Netlist.band c req token.(i) in
        Netlist.add_output c (Printf.sprintf "gnt%d" i) g;
        g)
      reqs
  in
  let any = Netlist.add_gate c Netlist.Or grants in
  (* grant history shift register with parity alarm *)
  let hist =
    List.init history (fun i -> Netlist.add_latch ~name:(Printf.sprintf "h%d" i) c ~init:false)
  in
  let arr = Array.of_list hist in
  for i = 0 to history - 1 do
    Netlist.set_latch_data c arr.(i) ~data:(if i = 0 then any else arr.(i - 1))
  done;
  let parity = Netlist.add_gate c Netlist.Xor hist in
  Netlist.add_output c "alarm" (Netlist.band c parity any);
  c

(* A transmit pipeline: a payload shift-in register, a CRC over the
   stream, and a busy FSM — datapath plus control in one block. *)
let transmitter ?(name = "tx") ~payload_bits ~crc_bits ~poly () =
  let c = Netlist.create (Printf.sprintf "%s_p%d" name payload_bits) in
  let din = Netlist.add_input ~name:"din" c in
  let start = Netlist.add_input ~name:"start" c in
  (* busy FSM: idle (0) / sending (1), toggled by start and a length timer *)
  let busy = Netlist.add_latch ~name:"busy" c ~init:false in
  let timer =
    List.init 3 (fun i -> Netlist.add_latch ~name:(Printf.sprintf "len%d" i) c ~init:false)
  in
  let carry = ref busy in
  List.iter
    (fun q ->
      Netlist.set_latch_data c q ~data:(Netlist.bxor c q !carry);
      carry := Netlist.band c q !carry)
    timer;
  let done_ = !carry in
  let busy_next =
    Netlist.bor c
      (Netlist.band c (Netlist.bnot c busy) start)
      (Netlist.band c busy (Netlist.bnot c done_))
  in
  Netlist.set_latch_data c busy ~data:busy_next;
  Netlist.add_output c "busy" busy;
  (* payload shift register, shifting only while busy *)
  let stages =
    List.init payload_bits (fun i ->
        Netlist.add_latch ~name:(Printf.sprintf "p%d" i) c ~init:false)
  in
  let arr = Array.of_list stages in
  let nbusy = Netlist.bnot c busy in
  for i = 0 to payload_bits - 1 do
    let shifted = if i = 0 then din else arr.(i - 1) in
    let d = Netlist.bor c (Netlist.band c busy shifted) (Netlist.band c nbusy arr.(i)) in
    Netlist.set_latch_data c arr.(i) ~data:d
  done;
  Netlist.add_output c "dout" arr.(payload_bits - 1);
  (* CRC over the outgoing bit *)
  let crc =
    List.init crc_bits (fun i -> Netlist.add_latch ~name:(Printf.sprintf "c%d" i) c ~init:false)
  in
  let crc_arr = Array.of_list crc in
  let fb = Netlist.bxor c crc_arr.(crc_bits - 1) arr.(payload_bits - 1) in
  for i = 0 to crc_bits - 1 do
    let shifted = if i = 0 then fb else crc_arr.(i - 1) in
    let d = if i > 0 && (poly lsr i) land 1 = 1 then Netlist.bxor c shifted fb else shifted in
    Netlist.set_latch_data c crc_arr.(i) ~data:d
  done;
  Netlist.add_output c "crc_out" crc_arr.(crc_bits - 1);
  c
