lib/circuits/fig2.ml: Aig Netlist
