lib/circuits/circuits.mli: Aig Netlist
