lib/circuits/counter.ml: Array List Netlist Printf
