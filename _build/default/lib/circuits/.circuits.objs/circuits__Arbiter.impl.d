lib/circuits/arbiter.ml: Array List Netlist Printf
