lib/circuits/lfsr.ml: Array List Netlist Printf
