lib/circuits/composite.ml: Array List Netlist Printf
