lib/circuits/fsm.ml: Array List Netlist Printf
