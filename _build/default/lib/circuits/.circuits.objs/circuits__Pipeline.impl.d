lib/circuits/pipeline.ml: List Netlist Printf
