lib/circuits/suite.ml: Aig Arbiter Composite Counter Fsm Lfsr List Netlist Pipeline Transform
