lib/circuits/circuits.ml: Arbiter Composite Counter Fig2 Fsm Lfsr Pipeline Suite
