(* Fault detection: inject faults into a circuit and watch the three
   methods catch them (or soundly report Unknown) — the negative
   direction of sequential equivalence checking.

   Run with:  dune exec examples/bug_hunt.exe *)

let () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 10) in
  Format.printf "golden circuit: %a@.@." Aig.pp_stats spec;
  let faults =
    [ Transform.Mutate.Flip_latch_init 0;
      Transform.Mutate.Flip_latch_init 3;
      Transform.Mutate.Swap_latch_nexts (0, 1);
      Transform.Mutate.Stuck_output "phase3";
    ]
  in
  List.iter
    (fun fault ->
      let mutant = Transform.Mutate.apply spec fault in
      Format.printf "fault: %a@." Transform.Mutate.pp_fault fault;
      (match Scorr.check spec mutant with
      | Scorr.Not_equivalent { frame; _ } ->
        Format.printf "  scorr:     caught — outputs differ at frame %d@." frame
      | Scorr.Unknown _ ->
        Format.printf "  scorr:     unknown (sound: never claims equivalence)@."
      | Scorr.Equivalent _ -> Format.printf "  scorr:     MISSED (soundness bug!)@.");
      let product = Scorr.Product.make spec mutant in
      let trans =
    Reach.Trans.make
      ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
      product.Scorr.Product.aig
  in
      (match (Reach.Traversal.check_equivalence trans).Reach.Traversal.outcome with
      | Reach.Traversal.Property_violation d ->
        Format.printf "  traversal: caught — violation at depth %d@." d
      | Reach.Traversal.Fixpoint _ ->
        Format.printf "  traversal: fault is unobservable (circuits equivalent)@."
      | Reach.Traversal.Budget_exceeded what -> Format.printf "  traversal: budget (%s)@." what);
      print_newline ())
    faults;
  (* random mutations, in bulk *)
  let caught = ref 0 and total = ref 0 in
  for seed = 1 to 20 do
    match Transform.Mutate.observable_mutant ~seed spec with
    | None -> ()
    | Some (mutant, _) ->
      incr total;
      (match Scorr.check spec mutant with
      | Scorr.Not_equivalent _ -> incr caught
      | Scorr.Equivalent _ | Scorr.Unknown _ -> ())
  done;
  Format.printf "random observable mutants refuted: %d/%d@." !caught !total
