(* Quickstart: build the paper's Fig. 2 example — a circuit and its
   retimed, optimized twin — and prove them sequentially equivalent with
   signal correspondence.  Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The specification: output = v1 & v2 with two latches. *)
  let spec_netlist = Circuits.Fig2.specification () in
  (* The implementation: the AND retimed into a new latch v6. *)
  let impl_netlist = Circuits.Fig2.implementation () in
  Format.printf "specification: %a@." Netlist.pp_stats spec_netlist;
  Format.printf "implementation: %a@." Netlist.pp_stats impl_netlist;
  print_newline ();
  print_endline "BLIF of the specification:";
  print_string (Netlist.Blif.to_string spec_netlist);
  print_newline ();

  (* Convert to AIGs and check. *)
  let spec, _ = Aig.of_netlist spec_netlist in
  let impl, _ = Aig.of_netlist impl_netlist in
  (match Scorr.check spec impl with
  | Scorr.Equivalent stats ->
    Format.printf
      "EQUIVALENT: proved in %d fixed-point iterations using %d candidate signals@."
      stats.Scorr.Verify.iterations stats.candidates;
    Format.printf "signal correspondences found for %.0f%% of the spec signals@."
      stats.eq_pct
  | Scorr.Not_equivalent { frame; _ } ->
    Format.printf "NOT EQUIVALENT at frame %d — should not happen!@." frame
  | Scorr.Unknown _ -> Format.printf "UNKNOWN — should not happen for this example!@.");
  print_newline ();

  (* The same result, the hard way: symbolic traversal of the product
     machine (the baseline the paper improves on). *)
  let product = Scorr.Product.make spec impl in
  let trans =
    Reach.Trans.make
      ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
      product.Scorr.Product.aig
  in
  match (Reach.Traversal.check_equivalence trans).Reach.Traversal.outcome with
  | Reach.Traversal.Fixpoint reached ->
    Format.printf "traversal agrees: product machine safe; %.0f reachable states@."
      (Reach.Traversal.count_states trans reached)
  | Reach.Traversal.Property_violation d ->
    Format.printf "traversal found a violation at depth %d — should not happen!@." d
  | Reach.Traversal.Budget_exceeded what -> Format.printf "traversal budget: %s@." what
