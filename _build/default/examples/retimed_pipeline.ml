(* Retiming verification: take the two-stage ALU pipeline, move its
   registers with backward/forward retiming, and prove the results
   sequentially equivalent — the workload class that motivated the paper
   (retiming barely changes the combinational structure, so internal
   signal correspondences abound).

   Run with:  dune exec examples/retimed_pipeline.exe *)

let describe label aig = Format.printf "%-22s %a@." label Aig.pp_stats aig

let check label spec impl =
  match Scorr.check spec impl with
  | Scorr.Equivalent stats ->
    Format.printf
      "%-22s EQUIVALENT  (%d iterations, %d candidates, %.0f%% of spec signals matched, %.2fs)@."
      label stats.Scorr.Verify.iterations stats.candidates stats.eq_pct stats.seconds
  | Scorr.Not_equivalent { frame; _ } ->
    Format.printf "%-22s NOT EQUIVALENT at frame %d (unexpected!)@." label frame
  | Scorr.Unknown _ -> Format.printf "%-22s UNKNOWN (unexpected for this workload)@." label

let () =
  let spec, _ = Aig.of_netlist (Circuits.Pipeline.alu 4) in
  describe "pipeline (spec)" spec;

  (* Backward retiming: the output register is pushed back into the ALU,
     splitting into per-fanin registers with justified initial values. *)
  let bwd = Transform.Retime.backward ~max_steps:1 spec in
  describe "backward retimed" bwd;
  check "spec vs backward" spec bwd;

  (* Forward retiming: input registers move forward across the first
     gates; initial values are recomputed through the gate functions. *)
  let fwd = Transform.Retime.forward ~max_steps:2 spec in
  describe "forward retimed" fwd;
  check "spec vs forward" spec fwd;

  (* Both, plus logic restructuring in between (the paper's workload). *)
  let impl = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:42 spec in
  describe "retimed + optimized" impl;
  check "spec vs retime+opt" spec impl;

  (* For contrast: register correspondence alone (the restricted method
     of [5]/[9]) cannot relate the moved registers. *)
  (match Scorr.register_correspondence spec bwd with
  | Scorr.Equivalent _ -> Format.printf "register correspondence: proved (surprising!)@."
  | Scorr.Unknown _ ->
    Format.printf
      "register correspondence alone: UNKNOWN — retimed registers have no@.";
    Format.printf
      "1-to-1 partner; this is the gap the paper's generalization closes.@."
  | Scorr.Not_equivalent _ -> Format.printf "register correspondence: refuted (bug!)@.")
