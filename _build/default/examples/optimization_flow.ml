(* A complete synthesis-and-verify flow: optimize a controller through
   every pass of the library (retiming, cut rewriting, fraiging, latch
   sweeping), verifying after each step, and compare the checker against
   the traversal baseline at the end.

   Run with:  dune exec examples/optimization_flow.exe *)

let verify label spec impl =
  match Scorr.check spec impl with
  | Scorr.Equivalent stats ->
    Format.printf "  %-18s OK  (%2d iters, eq %.0f%%, %.2fs)@." label
      stats.Scorr.Verify.iterations stats.eq_pct stats.seconds;
    true
  | Scorr.Not_equivalent { frame; _ } ->
    Format.printf "  %-18s BROKEN at frame %d@." label frame;
    false
  | Scorr.Unknown _ ->
    Format.printf "  %-18s unknown@." label;
    false

let () =
  let spec, _ = Aig.of_netlist (Circuits.Arbiter.round_robin 4) in
  Format.printf "specification: %a@." Aig.pp_stats spec;
  Format.printf "@.step-by-step optimization, verified after every pass:@.";

  let step label aig transform =
    let out = transform aig in
    Format.printf "%a@." Aig.pp_stats out;
    ignore (verify label spec out);
    out
  in
  let a = step "backward retime" spec (Transform.Retime.backward ~max_steps:1) in
  let a = step "cut rewriting" a (Transform.Opt.rewrite ~seed:7 ~p:0.6) in
  let a = step "forward retime" a (Transform.Retime.forward ~max_steps:2) in
  let a = step "fraig sweeping" a (fun x -> fst (Transform.Fraig.sweep ~seed:7 x)) in
  let final = step "latch sweeping" a Transform.Opt.latch_sweep in

  Format.printf "@.cross-check with the state-space-traversal baseline:@.";
  let product = Scorr.Product.make spec final in
  let trans =
    Reach.Trans.make
      ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
      product.Scorr.Product.aig
  in
  (match (Reach.Traversal.check_equivalence trans).Reach.Traversal.outcome with
  | Reach.Traversal.Fixpoint reached ->
    Format.printf "  traversal: EQUIVALENT after exploring %.0f product states@."
      (Reach.Traversal.count_states trans reached)
  | Reach.Traversal.Property_violation d ->
    Format.printf "  traversal: violation at depth %d (bug!)@." d
  | Reach.Traversal.Budget_exceeded what -> Format.printf "  traversal: gave up (%s)@." what);

  Format.printf "@.and what happens on a deep-state-space circuit (32-bit counter):@.";
  let deep, _ = Aig.of_netlist (Circuits.Counter.binary 32) in
  let deep_impl = Transform.Retime.backward ~max_steps:1 deep in
  ignore (verify "scorr (32-bit)" deep deep_impl);
  let product = Scorr.Product.make deep deep_impl in
  let trans =
    Reach.Trans.make
      ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
      product.Scorr.Product.aig
  in
  let budget =
    { Reach.Traversal.max_iterations = 2_000; max_live_nodes = 500_000; max_seconds = 10.0 }
  in
  match (Reach.Traversal.check_equivalence ~budget trans).Reach.Traversal.outcome with
  | Reach.Traversal.Budget_exceeded what ->
    Format.printf "  traversal: gave up (%s) — needs ~2^32 iterations@." what
  | Reach.Traversal.Fixpoint _ -> Format.printf "  traversal: finished (surprising!)@."
  | Reach.Traversal.Property_violation d -> Format.printf "  traversal: violation at %d (bug!)@." d
