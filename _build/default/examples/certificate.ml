(* The checker's certificate: after proving equivalence, print the final
   signal correspondence relation — which specification signal matches
   which implementation signal, with polarity (antivalences show up as
   complemented partners).

   Run with:  dune exec examples/certificate.exe *)

let () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 10) in
  let impl = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:5 spec in
  Format.printf "spec: %a@." Aig.pp_stats spec;
  Format.printf "impl: %a@.@." Aig.pp_stats impl;
  match Scorr.Verify.run_with_relation spec impl with
  | Scorr.Equivalent stats, product, Some partition ->
    Format.printf "EQUIVALENT in %d iterations; the relation that proves it:@.@."
      stats.Scorr.Verify.iterations;
    Format.printf "%a@." Scorr.Verify.pp_relation (product, partition);
    Format.printf
      "Reading the classes: spec:* / impl:* tag each signal's circuit,@.";
    Format.printf
      "~ marks a complemented (antivalent) member, shared:* is logic the@.";
    Format.printf
      "structural hash already unified, and miter:* are the comparison@.";
    Format.printf "XNORs.  Every output pair sits in a common class (Theorem 1).@."
  | Scorr.Not_equivalent { frame; _ }, _, _ ->
    Format.printf "NOT EQUIVALENT at frame %d — unexpected!@." frame
  | Scorr.Unknown _, _, _ -> Format.printf "UNKNOWN — unexpected for this workload!@."
  | Scorr.Equivalent _, _, None -> Format.printf "no relation recorded — unexpected!@."
