examples/optimization_flow.ml: Aig Circuits Format Reach Scorr Transform
