examples/retimed_pipeline.mli:
