examples/optimization_flow.mli:
