examples/quickstart.mli:
