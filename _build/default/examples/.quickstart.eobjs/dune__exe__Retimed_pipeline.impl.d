examples/retimed_pipeline.ml: Aig Circuits Format Scorr Transform
