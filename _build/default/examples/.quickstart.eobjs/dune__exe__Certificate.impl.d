examples/certificate.ml: Aig Circuits Format Scorr
