examples/quickstart.ml: Aig Circuits Format Netlist Reach Scorr
