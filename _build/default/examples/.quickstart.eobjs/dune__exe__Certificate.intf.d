examples/certificate.mli:
