examples/bug_hunt.ml: Aig Circuits Format List Reach Scorr Transform
