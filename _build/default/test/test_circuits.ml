(* Benchmark-circuit tests: every generator produces a well-formed netlist
   with the intended behaviour. *)

let bit frame name = Int64.logand 1L (List.assoc name frame)

let test_all_valid () =
  List.iter
    (fun e ->
      let c = e.Circuits.Suite.build () in
      match Netlist.validate c with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (e.Circuits.Suite.name ^ ": " ^ msg))
    Circuits.Suite.suite

let test_counter_counts () =
  let c = Circuits.Counter.binary 4 in
  (* enable always on, no reset: after k steps the count is k *)
  let frames = List.init 10 (fun _ -> [| -1L; 0L |]) in
  let outs = Netlist.Sim.run c frames in
  List.iteri
    (fun k frame ->
      let value =
        List.fold_left
          (fun acc i ->
            acc lor (Int64.to_int (bit frame (Printf.sprintf "count%d" i)) lsl i))
          0 [ 0; 1; 2; 3 ]
      in
      Alcotest.(check int) (Printf.sprintf "count at t=%d" k) (k mod 16) value)
    outs

let test_counter_reset () =
  let c = Circuits.Counter.binary 4 in
  (* count up 3, then reset *)
  let frames = [ [| -1L; 0L |]; [| -1L; 0L |]; [| -1L; 0L |]; [| -1L; -1L |]; [| 0L; 0L |] ] in
  let outs = Netlist.Sim.run c frames in
  let last = List.nth outs 4 in
  List.iter
    (fun i ->
      Alcotest.(check int64) (Printf.sprintf "bit %d clear" i) 0L
        (bit last (Printf.sprintf "count%d" i)))
    [ 0; 1; 2; 3 ]

let test_modulo_wraps () =
  let c = Circuits.Counter.modulo 5 in
  let frames = List.init 12 (fun _ -> [| -1L |]) in
  let outs = Netlist.Sim.run c frames in
  List.iteri
    (fun k frame ->
      let expect = k mod 5 in
      List.iter
        (fun v ->
          Alcotest.(check int64)
            (Printf.sprintf "phase%d at t=%d" v k)
            (if v = expect then 1L else 0L)
            (bit frame (Printf.sprintf "phase%d" v)))
        [ 0; 1; 2; 3; 4 ])
    outs

let test_ring_matches_modulo () =
  let a = Circuits.Counter.modulo 7 and b = Circuits.Counter.ring 7 in
  Alcotest.(check (option int)) "same phase behaviour" None (Test_util.seq_differ a b)

let test_detector_encodings_agree () =
  let pattern = [ true; false; true; true ] in
  let a = Circuits.Fsm.detector ~onehot:false pattern in
  let b = Circuits.Fsm.detector ~onehot:true pattern in
  Alcotest.(check (option int)) "same detector behaviour" None
    (Test_util.seq_differ ~n_frames:128 a b)

let test_detector_finds_pattern () =
  let c = Circuits.Fsm.detector ~onehot:true [ true; true; false ] in
  (* feed 1 1 0: found must rise exactly after the third symbol *)
  let w b = if b then [| 1L |] else [| 0L |] in
  let outs = Netlist.Sim.run c [ w true; w true; w false; w false ] in
  let founds = List.map (fun f -> bit f "found") outs in
  Alcotest.(check (list int64)) "found trace" [ 0L; 0L; 0L; 1L ] founds

let test_traffic_cycle () =
  let c = Circuits.Fsm.traffic () in
  (* car arrives, then timer pulses: lights must cycle NS -> EW -> NS *)
  let frames =
    [ [| 1L; 0L |]; (* car_ew: go yellow *) [| 0L; 1L |]; (* timer: green EW *)
      [| 0L; 1L |]; (* timer: yellow EW *) [| 0L; 1L |] (* timer: green NS *) ]
  in
  let outs = Netlist.Sim.run c frames in
  let state frame =
    List.find_map
      (fun name -> if bit frame name = 1L then Some name else None)
      [ "light_ns_green"; "light_ns_yellow"; "light_ew_green"; "light_ew_yellow" ]
  in
  Alcotest.(check (list (option string)))
    "light sequence"
    [ Some "light_ns_green"; Some "light_ns_yellow"; Some "light_ew_green";
      Some "light_ew_yellow" ]
    (List.map state outs)

let test_alu_ops () =
  let c = Circuits.Pipeline.alu 4 in
  let frame a b op =
    [| Int64.of_int (a land 1); Int64.of_int ((a lsr 1) land 1);
       Int64.of_int ((a lsr 2) land 1); Int64.of_int ((a lsr 3) land 1);
       Int64.of_int (b land 1); Int64.of_int ((b lsr 1) land 1);
       Int64.of_int ((b lsr 2) land 1); Int64.of_int ((b lsr 3) land 1);
       Int64.of_int (op land 1); Int64.of_int ((op lsr 1) land 1) |]
  in
  let result outs t =
    let f = List.nth outs t in
    List.fold_left
      (fun acc i -> acc lor (Int64.to_int (bit f (Printf.sprintf "res%d" i)) lsl i))
      0 [ 0; 1; 2; 3 ]
  in
  (* two-stage pipeline: the result of the frame-0 operands appears at t=2 *)
  let check_op op expect =
    let outs = Netlist.Sim.run c [ frame 12 10 op; frame 0 0 0; frame 0 0 0 ] in
    Alcotest.(check int) (Printf.sprintf "op %d" op) expect (result outs 2)
  in
  check_op 0 (12 land 10);
  check_op 1 (12 lor 10);
  check_op 2 (12 lxor 10);
  check_op 3 ((12 + 10) land 15)

let test_arbiter_grants () =
  let c = Circuits.Arbiter.round_robin 4 in
  (* only requester 2 asks: it gets the grant *)
  let outs = Netlist.Sim.run c [ [| 0L; 0L; 1L; 0L |] ] in
  let f = List.nth outs 0 in
  Alcotest.(check int64) "gnt2" 1L (bit f "gnt2");
  Alcotest.(check int64) "gnt0" 0L (bit f "gnt0");
  (* everyone asks: exactly one grant per cycle, rotating *)
  let frames = List.init 6 (fun _ -> [| -1L; -1L; -1L; -1L |]) in
  let outs = Netlist.Sim.run c frames in
  List.iter
    (fun f ->
      let grants =
        List.length (List.filter (fun i -> bit f (Printf.sprintf "gnt%d" i) = 1L) [ 0; 1; 2; 3 ])
      in
      Alcotest.(check int) "one grant" 1 grants)
    outs

let test_lfsr_period () =
  (* a maximal 4-bit LFSR (taps 3,2) visits 15 states before repeating *)
  let c = Circuits.Lfsr.fibonacci ~taps:[ 3; 2 ] 4 in
  let frames = List.init 16 (fun _ -> [| 1L |]) in
  let sim = Netlist.Sim.create c in
  Netlist.Sim.reset sim;
  let states = ref [] in
  List.iter
    (fun f ->
      Netlist.Sim.eval_comb sim f;
      let state =
        List.fold_left
          (fun acc i ->
            match Netlist.net_of_name c (Printf.sprintf "s%d" i) with
            | Some net -> acc lor (Int64.to_int (Int64.logand 1L (Netlist.Sim.value sim net)) lsl i)
            | None -> acc)
          0 [ 0; 1; 2; 3 ]
      in
      states := state :: !states;
      Netlist.Sim.step sim)
    frames;
  let distinct = List.sort_uniq compare !states in
  Alcotest.(check int) "period 15" 15 (List.length distinct)

let test_crc_known_value () =
  (* CRC register after feeding a known bit string must match a software
     computation of the same shift/xor recurrence *)
  let poly = 0x8005 and n = 16 in
  let c = Circuits.Lfsr.crc ~poly n in
  let bits = [ true; false; true; true; false; false; true; true; true; false ] in
  let frames = List.map (fun b -> [| (if b then 1L else 0L) |]) bits in
  let sim = Netlist.Sim.create c in
  Netlist.Sim.reset sim;
  List.iter
    (fun f ->
      Netlist.Sim.eval_comb sim f;
      Netlist.Sim.step sim)
    frames;
  (* software model *)
  let reg = ref 0 in
  List.iter
    (fun b ->
      let fb = ((!reg lsr (n - 1)) land 1) lxor (if b then 1 else 0) in
      reg := ((!reg lsl 1) land ((1 lsl n) - 1)) lor fb;
      if fb = 1 then reg := !reg lxor (poly land ((1 lsl n) - 1) land lnot 1))
    bits;
  (* read hardware register *)
  let hw = ref 0 in
  Netlist.Sim.eval_comb sim [| 0L |];
  for i = 0 to n - 1 do
    match Netlist.net_of_name c (Printf.sprintf "c%d" i) with
    | Some net -> hw := !hw lor (Int64.to_int (Int64.logand 1L (Netlist.Sim.value sim net)) lsl i)
    | None -> ()
  done;
  Alcotest.(check int) "crc register" !reg !hw

let test_bus_controller_behaviour () =
  let c = Circuits.Composite.bus_controller ~timer_bits:2 ~channels:2 ~history:2 () in
  Alcotest.(check bool) "valid" true (Netlist.validate c = Ok ());
  (* run always on, both requests: tick rises every 4 cycles, grants follow
     the token which starts at channel 0 *)
  let frames = List.init 9 (fun _ -> [| -1L; -1L; -1L |]) in
  let outs = Netlist.Sim.run c frames in
  let tick_at t = bit (List.nth outs t) "tick" in
  Alcotest.(check int64) "tick at t=3" 1L (tick_at 3);
  Alcotest.(check int64) "no tick at t=2" 0L (tick_at 2);
  Alcotest.(check int64) "tick at t=7" 1L (tick_at 7);
  (* exactly one grant per cycle when both request *)
  List.iter
    (fun f ->
      let g0 = bit f "gnt0" and g1 = bit f "gnt1" in
      Alcotest.(check int64) "one grant" 1L (Int64.add g0 g1))
    outs;
  (* token moves after the first tick: grant switches from 0 to 1 *)
  Alcotest.(check int64) "gnt0 first" 1L (bit (List.nth outs 0) "gnt0");
  Alcotest.(check int64) "gnt1 after tick" 1L (bit (List.nth outs 4) "gnt1")

let test_transmitter_behaviour () =
  let c = Circuits.Composite.transmitter ~payload_bits:4 ~crc_bits:4 ~poly:0x3 () in
  Alcotest.(check bool) "valid" true (Netlist.validate c = Ok ());
  (* start a transmission; busy must rise next cycle and the payload must
     emerge on dout after payload_bits cycles of shifting *)
  let mk din start = [| din; start |] in
  let frames =
    [ mk 0L 1L; mk 1L 0L; mk 1L 0L; mk 0L 0L; mk 1L 0L; mk 0L 0L; mk 0L 0L; mk 0L 0L ]
  in
  let outs = Netlist.Sim.run c frames in
  Alcotest.(check int64) "idle at t=0" 0L (bit (List.nth outs 0) "busy");
  Alcotest.(check int64) "busy at t=1" 1L (bit (List.nth outs 1) "busy")

let test_fig2_equivalent_by_simulation () =
  let spec, impl = Circuits.Fig2.pair () in
  Alcotest.(check (option int)) "fig2 behaviour" None (Test_util.aig_seq_differ spec impl);
  Alcotest.(check bool) "fig2 exact" true (Test_util.bounded_seq_equiv spec impl)

let suite =
  [ Alcotest.test_case "all suite entries valid" `Quick test_all_valid;
    Alcotest.test_case "counter counts" `Quick test_counter_counts;
    Alcotest.test_case "counter reset" `Quick test_counter_reset;
    Alcotest.test_case "modulo wraps" `Quick test_modulo_wraps;
    Alcotest.test_case "ring matches modulo" `Quick test_ring_matches_modulo;
    Alcotest.test_case "detector encodings agree" `Quick test_detector_encodings_agree;
    Alcotest.test_case "detector finds pattern" `Quick test_detector_finds_pattern;
    Alcotest.test_case "traffic cycle" `Quick test_traffic_cycle;
    Alcotest.test_case "alu ops" `Quick test_alu_ops;
    Alcotest.test_case "arbiter grants" `Quick test_arbiter_grants;
    Alcotest.test_case "lfsr period" `Quick test_lfsr_period;
    Alcotest.test_case "crc known value" `Quick test_crc_known_value;
    Alcotest.test_case "bus controller" `Quick test_bus_controller_behaviour;
    Alcotest.test_case "transmitter" `Quick test_transmitter_behaviour;
    Alcotest.test_case "fig2 behaviour" `Quick test_fig2_equivalent_by_simulation;
  ]

let () = Alcotest.run "circuits" [ ("circuits", suite) ]
