(* Shared helpers for the test suites: random circuit generation and
   sequential-behaviour comparison. *)

let gate_fns =
  [| Netlist.And; Netlist.Or; Netlist.Nand; Netlist.Nor; Netlist.Xor;
     Netlist.Xnor; Netlist.Not; Netlist.Buf |]

(* A random well-formed sequential circuit.  Gates only reference earlier
   nets, so the combinational part is acyclic by construction; latch data
   inputs may reference any net, giving real sequential feedback. *)
let random_circuit ?(n_inputs = 4) ?(n_latches = 3) ?(n_gates = 20) ?(n_outputs = 2) seed =
  let rng = Random.State.make [| seed; 0xc1c |] in
  let c = Netlist.create (Printf.sprintf "rand%d" seed) in
  let nets = ref [] in
  for i = 0 to n_inputs - 1 do
    nets := Netlist.add_input ~name:(Printf.sprintf "in%d" i) c :: !nets
  done;
  let latch_nets =
    List.init n_latches (fun i ->
        let l =
          Netlist.add_latch ~name:(Printf.sprintf "q%d" i) c
            ~init:(Random.State.bool rng)
        in
        nets := l :: !nets;
        l)
  in
  let pick () =
    let pool = !nets in
    List.nth pool (Random.State.int rng (List.length pool))
  in
  for _ = 1 to n_gates do
    let fn = gate_fns.(Random.State.int rng (Array.length gate_fns)) in
    let arity =
      match fn with
      | Netlist.Not | Netlist.Buf -> 1
      | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
      | Netlist.Xnor ->
        1 + Random.State.int rng 3
      | Netlist.Const0 | Netlist.Const1 -> 0
    in
    let fanins = List.init arity (fun _ -> pick ()) in
    nets := Netlist.add_gate c fn fanins :: !nets
  done;
  List.iter (fun l -> Netlist.set_latch_data c l ~data:(pick ())) latch_nets;
  for i = 0 to n_outputs - 1 do
    Netlist.add_output c (Printf.sprintf "out%d" i) (pick ())
  done;
  c

(* Compare two circuits' sequential behaviour on random stimuli.  Both must
   have the same number of inputs and identically named outputs.  Returns
   [None] when all frames agree, otherwise the index of the first
   disagreeing frame. *)
let seq_differ ?(seed = 42) ?(n_frames = 32) c1 c2 =
  let n_inputs = List.length (Netlist.inputs c1) in
  assert (n_inputs = List.length (Netlist.inputs c2));
  let stimuli = Netlist.Sim.random_stimuli ~seed ~n_inputs ~n_frames in
  let o1 = Netlist.Sim.run c1 stimuli and o2 = Netlist.Sim.run c2 stimuli in
  let rec scan i = function
    | [], [] -> None
    | f1 :: r1, f2 :: r2 ->
      let sorted = List.sort compare in
      if sorted f1 <> sorted f2 then Some i else scan (i + 1) (r1, r2)
    | _ -> Some i
  in
  scan 0 (o1, o2)

(* Same comparison at the AIG level. *)
let aig_seq_differ ?(seed = 42) ?(n_frames = 32) a1 a2 =
  let n_pis = Aig.num_pis a1 in
  assert (n_pis = Aig.num_pis a2);
  let frames = Aig.Sim.random_frames ~seed ~n_pis ~n_frames in
  let o1, _ = Aig.Sim.run a1 frames and o2, _ = Aig.Sim.run a2 frames in
  let rec scan i = function
    | [], [] -> None
    | f1 :: r1, f2 :: r2 ->
      let sorted = List.sort compare in
      if sorted f1 <> sorted f2 then Some i else scan (i + 1) (r1, r2)
    | _ -> Some i
  in
  scan 0 (o1, o2)

(* Exhaustive bounded sequential equivalence for tiny circuits: breadth
   first over the joint reachable states, comparing outputs on every input
   vector.  The ground truth oracle for checker tests. *)
let bounded_seq_equiv ?(max_states = 1 lsl 16) a1 a2 =
  let n_pis = Aig.num_pis a1 in
  assert (n_pis = Aig.num_pis a2);
  assert (n_pis <= 10);
  let pack words = Array.to_list words in
  let outputs_and_next a state pi_bits =
    let pi_words =
      Array.init (Aig.num_pis a) (fun i ->
          if pi_bits land (1 lsl i) <> 0 then -1L else 0L)
    in
    let values, next = Aig.Sim.step a ~pi_words ~latch_words:state in
    let outs =
      List.map (fun (name, l) -> (name, Int64.logand 1L (Aig.Sim.lit_word values l)))
        (Aig.pos a)
    in
    (List.sort compare outs, next)
  in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let s0 = (Aig.Sim.initial_latch_words a1, Aig.Sim.initial_latch_words a2) in
  Queue.add s0 queue;
  Hashtbl.replace seen (pack (fst s0), pack (snd s0)) ();
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let s1, s2 = Queue.pop queue in
    for pi_bits = 0 to (1 lsl n_pis) - 1 do
      if !ok then begin
        let o1, n1 = outputs_and_next a1 s1 pi_bits in
        let o2, n2 = outputs_and_next a2 s2 pi_bits in
        if o1 <> o2 then ok := false
        else begin
          let key = (pack n1, pack n2) in
          if not (Hashtbl.mem seen key) then begin
            if Hashtbl.length seen >= max_states then
              failwith "bounded_seq_equiv: state budget exceeded";
            Hashtbl.replace seen key ();
            Queue.add (n1, n2) queue
          end
        end
      end
    done
  done;
  !ok
