(* Transformation tests: every synthesis pass must preserve sequential
   behaviour; fault injection must not. *)

let aig_of_seed ?n_gates seed =
  let c = Test_util.random_circuit ?n_gates seed in
  let a, _ = Aig.of_netlist c in
  a

let check_preserved name transform =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = aig_of_seed seed in
         let a' = transform seed a in
         Aig.validate a' = Ok ()
         && Aig.num_pis a' = Aig.num_pis a
         && Test_util.aig_seq_differ a a' = None))

let prop_forward_retime = check_preserved "forward retiming preserves behaviour"
    (fun _ a -> Transform.Retime.forward ~max_steps:3 a)

let prop_backward_retime = check_preserved "backward retiming preserves behaviour"
    (fun _ a -> Transform.Retime.backward ~max_steps:2 a)

let prop_retime_roundtrip = check_preserved "fwd+bwd retiming preserves behaviour"
    (fun _ a -> Transform.Retime.forward (Transform.Retime.backward a))

let prop_rewrite = check_preserved "cut rewriting preserves behaviour"
    (fun seed a -> Transform.Opt.rewrite ~seed a)

let prop_latch_sweep = check_preserved "latch sweeping preserves behaviour"
    (fun _ a -> Transform.Opt.latch_sweep a)

let prop_dedup = check_preserved "latch dedup preserves behaviour"
    (fun _ a -> Transform.Opt.dedup_latches a)

let prop_fraig = check_preserved "fraig sweeping preserves behaviour"
    (fun seed a -> fst (Transform.Fraig.sweep ~seed a))

let prop_pipeline = check_preserved "full synthesis pipeline preserves behaviour"
    (fun seed a ->
      let a = Transform.Retime.forward ~max_steps:2 a in
      let a = Transform.Opt.rewrite ~seed a in
      let a = fst (Transform.Fraig.sweep ~seed a) in
      Transform.Opt.latch_sweep a)

(* small exact check: forward retiming verified against exhaustive product
   exploration on tiny circuits *)
let prop_retime_exact =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"forward retiming exact on tiny circuits" ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
         let a, _ = Aig.of_netlist c in
         let a' = Transform.Retime.forward ~max_steps:2 a in
         Test_util.bounded_seq_equiv a a'))

let test_forward_moves_registers () =
  (* two latches feeding one AND: forward retiming should apply *)
  let a = Aig.create () in
  let x = Aig.add_pi a in
  let q1 = Aig.add_latch a ~init:true in
  let q2 = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q1 ~next:x;
  Aig.set_latch_next a q2 ~next:(Aig.lit_not x) ;
  Aig.add_po a "o" (Aig.mk_and a q1 q2);
  match Transform.Retime.forward_step a with
  | None -> Alcotest.fail "expected a retiming move"
  | Some a' ->
    Alcotest.(check int) "one latch remains" 1 (Aig.num_latches a');
    Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a')

let test_latch_sweep_removes_stuck () =
  (* q0 stuck at 0 (next = q0 & x with init false... use next = q0) *)
  let a = Aig.create () in
  let x = Aig.add_pi a in
  let q0 = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q0 ~next:q0;
  let q1 = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q1 ~next:(Aig.mk_xor a q1 x);
  Aig.add_po a "o" (Aig.mk_or a q0 q1);
  let a' = Transform.Opt.latch_sweep a in
  Alcotest.(check int) "stuck latch removed" 1 (Aig.num_latches a');
  Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a')

let test_dedup_merges () =
  let a = Aig.create () in
  let x = Aig.add_pi a in
  let q1 = Aig.add_latch a ~init:false in
  let q2 = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q1 ~next:x;
  Aig.set_latch_next a q2 ~next:x;
  Aig.add_po a "o" (Aig.mk_and a q1 q2);
  let a' = Transform.Opt.dedup_latches a in
  Alcotest.(check int) "merged" 1 (Aig.num_latches a');
  Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a')

let test_fraig_reduces_redundancy () =
  (* build f twice with different structure: fraig should share them *)
  let a = Aig.create () in
  let x = Aig.add_pi a and y = Aig.add_pi a and z = Aig.add_pi a in
  let f1 = Aig.mk_and a x (Aig.mk_and a y z) in
  let f2 = Aig.mk_and a (Aig.mk_and a x y) z in
  Aig.add_po a "o" (Aig.mk_xor a f1 f2);
  (* o is constant false but the structure does not show it *)
  let a', stats = Transform.Fraig.sweep a in
  Alcotest.(check bool) "something merged" true (stats.Transform.Fraig.merged > 0);
  Alcotest.(check bool) "output folded to constant" true
    (List.for_all (fun (_, l) -> l = Aig.lit_false) (Aig.pos a'));
  Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a')

let test_backward_justifies_init () =
  (* latch with init 1 whose next is an AND: the split latches' inits must
     multiply back to 1, i.e. both start at 1 *)
  let a = Aig.create () in
  let x = Aig.add_pi a and y = Aig.add_pi a in
  let q = Aig.add_latch a ~init:true in
  Aig.set_latch_next a q ~next:(Aig.mk_and a x y);
  Aig.add_po a "o" q;
  (match Transform.Retime.backward_step a with
  | None -> Alcotest.fail "expected a backward move"
  | Some a' ->
    Alcotest.(check int) "two latches" 2 (Aig.num_latches a');
    Alcotest.(check bool) "both inits 1" true
      (Aig.latch_init a' 0 && Aig.latch_init a' 1);
    Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a'));
  (* and with init 0: a 0/0 preimage *)
  let b = Aig.create () in
  let x = Aig.add_pi b and y = Aig.add_pi b in
  let q = Aig.add_latch b ~init:false in
  Aig.set_latch_next b q ~next:(Aig.mk_and b x y);
  Aig.add_po b "o" q;
  match Transform.Retime.backward_step b with
  | None -> Alcotest.fail "expected a backward move"
  | Some b' ->
    Alcotest.(check bool) "both inits 0" true
      ((not (Aig.latch_init b' 0)) && not (Aig.latch_init b' 1));
    Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ b b')

let test_backward_complemented_next () =
  (* next-state is a complemented AND: out = NAND of the split latches *)
  let a = Aig.create () in
  let x = Aig.add_pi a and y = Aig.add_pi a in
  let q = Aig.add_latch a ~init:true in
  Aig.set_latch_next a q ~next:(Aig.lit_not (Aig.mk_and a x y));
  Aig.add_po a "o" q;
  match Transform.Retime.backward_step a with
  | None -> Alcotest.fail "expected a backward move"
  | Some a' ->
    Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ a a');
    Alcotest.(check bool) "exact" true (Test_util.bounded_seq_equiv a a')

let prop_mutants_differ =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"observable mutants really differ" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = aig_of_seed seed in
         match Transform.Mutate.observable_mutant ~seed a with
         | None -> QCheck.assume_fail ()
         | Some (mutant, _) -> Test_util.aig_seq_differ a mutant <> None))

let suite =
  [ Alcotest.test_case "forward moves registers" `Quick test_forward_moves_registers;
    Alcotest.test_case "latch sweep removes stuck" `Quick test_latch_sweep_removes_stuck;
    Alcotest.test_case "dedup merges" `Quick test_dedup_merges;
    Alcotest.test_case "fraig reduces redundancy" `Quick test_fraig_reduces_redundancy;
    Alcotest.test_case "backward init justification" `Quick test_backward_justifies_init;
    Alcotest.test_case "backward complemented next" `Quick test_backward_complemented_next;
    prop_forward_retime;
    prop_backward_retime;
    prop_retime_roundtrip;
    prop_rewrite;
    prop_latch_sweep;
    prop_dedup;
    prop_fraig;
    prop_pipeline;
    prop_retime_exact;
    prop_mutants_differ;
  ]

let () = Alcotest.run "transform" [ ("transform", suite) ]
