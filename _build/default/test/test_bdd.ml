(* BDD package tests: every operation is cross-checked against a brute-force
   truth-table semantics on random small formulas. *)

(* A tiny formula language with a reference evaluator. *)
type formula =
  | F_var of int
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula
  | F_xor of formula * formula
  | F_ite of formula * formula * formula

let rec eval_formula env = function
  | F_var v -> env v
  | F_not f -> not (eval_formula env f)
  | F_and (f, g) -> eval_formula env f && eval_formula env g
  | F_or (f, g) -> eval_formula env f || eval_formula env g
  | F_xor (f, g) -> eval_formula env f <> eval_formula env g
  | F_ite (f, g, h) -> if eval_formula env f then eval_formula env g else eval_formula env h

let rec build m = function
  | F_var v -> Bdd.var m v
  | F_not f -> Bdd.mk_not m (build m f)
  | F_and (f, g) -> Bdd.mk_and m (build m f) (build m g)
  | F_or (f, g) -> Bdd.mk_or m (build m f) (build m g)
  | F_xor (f, g) -> Bdd.mk_xor m (build m f) (build m g)
  | F_ite (f, g, h) -> Bdd.ite m (build m f) (build m g) (build m h)

let nvars_tt = 5

let formula_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then map (fun v -> F_var v) (int_bound (nvars_tt - 1))
      else
        frequency
          [ (1, map (fun v -> F_var v) (int_bound (nvars_tt - 1)));
            (2, map (fun f -> F_not f) (self (n - 1)));
            (3, map2 (fun f g -> F_and (f, g)) (self (n / 2)) (self (n / 2)));
            (3, map2 (fun f g -> F_or (f, g)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun f g -> F_xor (f, g)) (self (n / 2)) (self (n / 2)));
            (1,
             map3 (fun f g h -> F_ite (f, g, h)) (self (n / 3)) (self (n / 3)) (self (n / 3)));
          ])

let rec pp_formula ppf = function
  | F_var v -> Format.fprintf ppf "x%d" v
  | F_not f -> Format.fprintf ppf "!(%a)" pp_formula f
  | F_and (f, g) -> Format.fprintf ppf "(%a & %a)" pp_formula f pp_formula g
  | F_or (f, g) -> Format.fprintf ppf "(%a | %a)" pp_formula f pp_formula g
  | F_xor (f, g) -> Format.fprintf ppf "(%a ^ %a)" pp_formula f pp_formula g
  | F_ite (f, g, h) ->
    Format.fprintf ppf "ite(%a,%a,%a)" pp_formula f pp_formula g pp_formula h

let arbitrary_formula =
  QCheck.make formula_gen ~print:(Format.asprintf "%a" pp_formula)

let env_of_int bits v = bits land (1 lsl v) <> 0

let forall_envs p =
  let rec go bits = bits >= 1 lsl nvars_tt || (p (env_of_int bits) && go (bits + 1)) in
  go 0

let prop name count p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary_formula p)

let prop2 name count p =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count (QCheck.pair arbitrary_formula arbitrary_formula) p)

(* --- unit tests --------------------------------------------------------- *)

let test_constants () =
  let m = Bdd.create () in
  Alcotest.(check bool) "one is true" true (Bdd.is_true Bdd.one);
  Alcotest.(check bool) "zero is false" true (Bdd.is_false Bdd.zero);
  Alcotest.(check bool) "not one = zero" true (Bdd.equal (Bdd.mk_not m Bdd.one) Bdd.zero);
  Alcotest.(check bool) "x & !x = 0" true
    (Bdd.is_false (Bdd.mk_and m (Bdd.var m 0) (Bdd.nvar m 0)));
  Alcotest.(check bool) "x | !x = 1" true
    (Bdd.is_true (Bdd.mk_or m (Bdd.var m 0) (Bdd.nvar m 0)))

let test_hashcons () =
  let m = Bdd.create () in
  let f = Bdd.mk_and m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.mk_and m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "and commutes physically" true (Bdd.equal f g);
  let h = Bdd.mk_not m (Bdd.mk_or m (Bdd.nvar m 0) (Bdd.nvar m 1)) in
  Alcotest.(check bool) "de morgan physically" true (Bdd.equal f h)

let test_cofactor () =
  let m = Bdd.create () in
  let f = Bdd.mk_xor m (Bdd.var m 0) (Bdd.var m 1) in
  let f1 = Bdd.cofactor m f 0 true in
  Alcotest.(check bool) "xor cofactor" true (Bdd.equal f1 (Bdd.nvar m 1))

let test_quantify () =
  let m = Bdd.create () in
  let f = Bdd.mk_and m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "exists x0 (x0&x1) = x1" true
    (Bdd.equal (Bdd.exists m [ 0 ] f) (Bdd.var m 1));
  Alcotest.(check bool) "forall x0 (x0&x1) = 0" true
    (Bdd.is_false (Bdd.forall m [ 0 ] f))

let test_compose () =
  let m = Bdd.create () in
  let f = Bdd.mk_xor m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.mk_and m (Bdd.var m 2) (Bdd.var m 3) in
  let h = Bdd.compose m f 0 g in
  let expect = Bdd.mk_xor m g (Bdd.var m 1) in
  Alcotest.(check bool) "compose xor" true (Bdd.equal h expect)

let test_sat_count () =
  let m = Bdd.create () in
  let f = Bdd.mk_or m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check (float 0.001)) "or over 2 vars" 3.0 (Bdd.sat_count m ~nvars:2 f);
  Alcotest.(check (float 0.001)) "or over 3 vars" 6.0 (Bdd.sat_count m ~nvars:3 f)

let test_support () =
  let m = Bdd.create () in
  let f = Bdd.mk_and m (Bdd.var m 4) (Bdd.mk_or m (Bdd.var m 1) (Bdd.var m 2)) in
  Alcotest.(check (list int)) "support" [ 1; 2; 4 ] (Bdd.support f)

let test_restrict_example () =
  let m = Bdd.create () in
  (* f = x0 & x1, care = x0: restrict should not need x0 anymore *)
  let f = Bdd.mk_and m (Bdd.var m 0) (Bdd.var m 1) in
  let r = Bdd.restrict m f ~care:(Bdd.var m 0) in
  Alcotest.(check bool) "restrict drops x0" true (Bdd.equal r (Bdd.var m 1))

(* --- property tests ----------------------------------------------------- *)

let agree_tt f =
  let m = Bdd.create () in
  let b = build m f in
  forall_envs (fun env -> Bdd.eval b env = eval_formula env f)

let quantify_exists_ok f =
  let m = Bdd.create () in
  let b = build m f in
  let q = Bdd.exists m [ 0; 2 ] b in
  forall_envs (fun env ->
      let expect =
        List.exists
          (fun (b0, b2) ->
            let env' v = if v = 0 then b0 else if v = 2 then b2 else env v in
            eval_formula env' f)
          [ (false, false); (false, true); (true, false); (true, true) ]
      in
      Bdd.eval q env = expect)

let and_exists_ok (f, g) =
  let m = Bdd.create () in
  let bf = build m f and bg = build m g in
  let direct = Bdd.exists m [ 1; 3 ] (Bdd.mk_and m bf bg) in
  let fused = Bdd.and_exists m [ 1; 3 ] bf bg in
  Bdd.equal direct fused

let compose_ok (f, g) =
  let m = Bdd.create () in
  let bf = build m f and bg = build m g in
  let c = Bdd.compose m bf 1 bg in
  forall_envs (fun env ->
      let env' v = if v = 1 then eval_formula env g else env v in
      Bdd.eval c env = eval_formula env' f)

let vector_compose_ok (f, g) =
  let m = Bdd.create () in
  let bf = build m f and bg = build m g in
  let subst = Array.make nvars_tt None in
  subst.(0) <- Some bg;
  subst.(2) <- Some (Bdd.mk_not m bg);
  let c = Bdd.vector_compose m bf subst in
  forall_envs (fun env ->
      let gv = eval_formula env g in
      let env' v = if v = 0 then gv else if v = 2 then not gv else env v in
      Bdd.eval c env = eval_formula env' f)

let restrict_sound (f, g) =
  (* restrict agrees with f wherever the care set holds *)
  let m = Bdd.create () in
  let bf = build m f and care = build m g in
  QCheck.assume (not (Bdd.is_false care));
  let r = Bdd.restrict m bf ~care in
  forall_envs (fun env -> (not (Bdd.eval care env)) || Bdd.eval r env = Bdd.eval bf env)

let constrain_sound (f, g) =
  let m = Bdd.create () in
  let bf = build m f and c = build m g in
  QCheck.assume (not (Bdd.is_false c));
  let r = Bdd.constrain m bf c in
  forall_envs (fun env -> (not (Bdd.eval c env)) || Bdd.eval r env = Bdd.eval bf env)

let any_sat_ok f =
  let m = Bdd.create () in
  let b = build m f in
  match Bdd.any_sat b with
  | None -> Bdd.is_false b
  | Some cube ->
    let env v = match List.assoc_opt v cube with Some b -> b | None -> false in
    Bdd.eval b env

let sat_count_ok f =
  let m = Bdd.create () in
  let b = build m f in
  let expect = ref 0 in
  for bits = 0 to (1 lsl nvars_tt) - 1 do
    if eval_formula (env_of_int bits) f then incr expect
  done;
  abs_float (Bdd.sat_count m ~nvars:nvars_tt b -. float_of_int !expect) < 0.5

let reorder_preserves f =
  let m = Bdd.create () in
  let b = build m f in
  (* force all nvars_tt variables to exist so orders are total *)
  let _ = Bdd.var m (nvars_tt - 1) in
  let order = Array.init nvars_tt (fun i -> nvars_tt - 1 - i) in
  match Bdd.Reorder.with_order ~order [ b ] with
  | _, [ b' ] -> forall_envs (fun env -> Bdd.eval b' env = Bdd.eval b env)
  | _ -> false

let sift_preserves f =
  let m = Bdd.create () in
  let b = build m f in
  let _ = Bdd.var m (nvars_tt - 1) in
  match Bdd.Reorder.sift m [ b ] with
  | _, [ b' ] -> forall_envs (fun env -> Bdd.eval b' env = Bdd.eval b env)
  | _ -> false

let canonical (f, g) =
  (* semantically equal formulas yield physically equal BDDs *)
  let m = Bdd.create () in
  let bf = build m f and bg = build m g in
  let sem_equal = forall_envs (fun env -> eval_formula env f = eval_formula env g) in
  Bdd.equal bf bg = sem_equal

let test_size_at_most () =
  let m = Bdd.create () in
  let f = Bdd.mk_xor m (Bdd.mk_xor m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2) in
  let n = Bdd.size f in
  Alcotest.(check (option int)) "within bound" (Some n) (Bdd.size_at_most f n);
  Alcotest.(check (option int)) "over bound" None (Bdd.size_at_most f (n - 1));
  Alcotest.(check (option int)) "terminal" (Some 0) (Bdd.size_at_most Bdd.one 0)

let test_node_limit () =
  let m = Bdd.create () in
  Bdd.set_node_limit m 8;
  match
    (* a parity chain of 20 variables needs far more than 8 nodes *)
    List.fold_left
      (fun acc v -> Bdd.mk_xor m acc (Bdd.var m v))
      Bdd.zero
      (List.init 20 (fun i -> i))
  with
  | exception Bdd.Limit_exceeded -> ()
  | _ -> Alcotest.fail "expected Limit_exceeded"

let test_memo_entries_clearing () =
  let m = Bdd.create () in
  let f = Bdd.mk_and m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.mk_or m f (Bdd.var m 2) in
  ignore (Bdd.mk_xor m f g);
  Alcotest.(check bool) "caches populated" true (Bdd.memo_entries m > 0);
  Bdd.clear_caches m;
  Alcotest.(check int) "caches empty" 0 (Bdd.memo_entries m);
  (* results remain canonical after clearing *)
  let f' = Bdd.mk_and m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "hash-consing survives" true (Bdd.equal f f')

let test_interleave () =
  let order = Bdd.Reorder.interleave [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check (list int)) "interleave" [ 0; 3; 1; 4; 2 ] order

let suite =
  [ Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "hashcons canonical" `Quick test_hashcons;
    Alcotest.test_case "cofactor" `Quick test_cofactor;
    Alcotest.test_case "quantify" `Quick test_quantify;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "restrict example" `Quick test_restrict_example;
    Alcotest.test_case "interleave" `Quick test_interleave;
    Alcotest.test_case "size_at_most" `Quick test_size_at_most;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    Alcotest.test_case "memo entries" `Quick test_memo_entries_clearing;
    prop "bdd agrees with truth table" 300 agree_tt;
    prop "exists agrees with expansion" 150 quantify_exists_ok;
    prop2 "and_exists = exists of and" 150 and_exists_ok;
    prop2 "compose semantics" 150 compose_ok;
    prop2 "vector_compose semantics" 150 vector_compose_ok;
    prop2 "restrict sound on care set" 150 restrict_sound;
    prop2 "constrain sound on care set" 150 constrain_sound;
    prop "any_sat returns a model" 200 any_sat_ok;
    prop "sat_count exact" 200 sat_count_ok;
    prop "reorder preserves semantics" 100 reorder_preserves;
    prop "sift preserves semantics" 50 sift_preserves;
    prop2 "canonicity" 200 canonical;
  ]

let () = Alcotest.run "bdd" [ ("bdd", suite) ]
