test/test_partition.ml: Aig Alcotest Array List QCheck QCheck_alcotest Random Scorr
