test/test_verify.ml: Aig Alcotest Array Circuits Format Fun List Printf QCheck QCheck_alcotest Scorr String Test_util Transform
