test/test_reach.mli:
