test/test_engines.mli:
