test/test_sat.ml: Alcotest List Printf QCheck QCheck_alcotest Random Sat String
