test/test_engines.ml: Aig Alcotest Array Engines Fun List QCheck QCheck_alcotest Test_util Transform
