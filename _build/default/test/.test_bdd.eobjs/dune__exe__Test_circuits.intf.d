test/test_circuits.mli:
