test/test_scorr.ml: Aig Alcotest Bdd Circuits List Option QCheck QCheck_alcotest Scorr Test_util Transform
