test/test_aig.ml: Aig Alcotest Array Hashtbl Int64 List Netlist QCheck QCheck_alcotest Sat String Test_util
