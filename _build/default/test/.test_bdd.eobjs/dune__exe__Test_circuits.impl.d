test/test_circuits.ml: Alcotest Circuits Int64 List Netlist Printf Test_util
