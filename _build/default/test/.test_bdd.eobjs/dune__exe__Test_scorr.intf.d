test/test_scorr.mli:
