test/test_netlist.ml: Alcotest Array Hashtbl Int64 List Netlist Printf QCheck QCheck_alcotest String Test_util
