test/test_partition.mli:
