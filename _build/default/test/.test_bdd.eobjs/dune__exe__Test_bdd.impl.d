test/test_bdd.ml: Alcotest Array Bdd Format List QCheck QCheck_alcotest
