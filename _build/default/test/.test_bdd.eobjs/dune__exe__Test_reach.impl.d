test/test_reach.ml: Aig Alcotest Array Bdd Circuits List Printf QCheck QCheck_alcotest Reach Scorr Test_util Transform
