test/test_transform.ml: Aig Alcotest List QCheck QCheck_alcotest Test_util Transform
