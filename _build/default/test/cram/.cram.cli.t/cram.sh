  $ seqver gen --list | head -4
  $ seqver gen ctr8 -o spec.blif
  $ seqver stats spec.blif
  $ seqver opt spec.blif impl.aag --recipe retime+opt --seed 3 > /dev/null
  $ seqver verify spec.blif impl.aag -q
  $ seqver verify spec.blif impl.aag -e sat -q
  $ seqver verify spec.blif impl.aag -m traversal -q
  $ seqver verify spec.blif impl.aag -m regcorr --no-retime -q
  $ seqver gen mod10 -o good.blif
  $ seqver opt good.blif bad.aag --recipe retime --seed 5 > /dev/null
  $ seqver verify good.blif bad.aag -q
  $ seqver sim good.blif --frames 2 --seed 1 | head -1
  $ seqver gen mod10 --format bench -o mod10.bench
  $ seqver stats mod10.bench
  $ seqver verify mod10.bench good.blif -m auto -q
  $ seqver gen ctr8 -o c8.blif
  $ seqver bmc c8.blif c8.blif --depth 5
