(* Combinational equivalence engine tests: the three engines must agree
   with each other and with ground truth (equivalent transforms vs
   observable mutants). *)

let aig_of_seed ?(n_latches = 3) seed =
  let c = Test_util.random_circuit ~n_latches seed in
  let a, _ = Aig.of_netlist c in
  a

(* rewrite/fraig may garbage-collect unused latches, so pure combinational
   equivalence is exercised on latch-free circuits *)
let comb_aig_of_seed seed = aig_of_seed ~n_latches:0 seed

let is_equiv = function Engines.Cec.Equivalent -> true | Engines.Cec.Different _ -> false

let engines : (string * Engines.Cec.engine) list =
  [ ("bdd", `Bdd); ("sat", `Sat); ("hybrid", `Hybrid) ]

let prop_equiv_after_rewrite =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cec proves rewrite equivalent (all engines)" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = comb_aig_of_seed seed in
         let a' = Transform.Opt.rewrite ~seed a in
         List.for_all (fun (_, e) -> is_equiv (Engines.Cec.check ~engine:e a a')) engines))

let prop_equiv_after_fraig =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cec proves fraig equivalent" ~count:30
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = comb_aig_of_seed seed in
         let a', _ = Transform.Fraig.sweep ~seed a in
         is_equiv (Engines.Cec.check ~engine:`Sat a a')))

(* combinational mutants: faults in the combinational logic are detected
   with a confirmed counterexample.  (Latch-init faults are invisible to a
   combinational check — that is the point of sequential verification.) *)
let prop_mutant_detected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cec finds confirmed cex for comb faults" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = aig_of_seed seed in
         match Transform.Mutate.pick_fault ~seed a with
         | Some ((Transform.Mutate.Flip_fanin_polarity _ | Transform.Mutate.And_to_or _) as f)
           ->
           let mutant = Transform.Mutate.apply a f in
           List.for_all
             (fun (_, e) ->
               match Engines.Cec.check ~engine:e a mutant with
               | Engines.Cec.Equivalent ->
                 (* the fault may be untestable (redundant logic) — cross
                    check with the other engines via SAT *)
                 is_equiv (Engines.Cec.check ~engine:`Sat a mutant)
               | Engines.Cec.Different cex ->
                 Engines.Cec.confirm_counterexample a mutant cex)
             engines
         | _ -> QCheck.assume_fail ()))

let prop_engines_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bdd and sat engines agree" ~count:40
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         (* compare two circuits over the same interface; usually different *)
         let a1 = aig_of_seed seed1 in
         let a2 = aig_of_seed seed2 in
         QCheck.assume (Engines.Cec.interface_compatible a1 a2);
         QCheck.assume
           (List.map fst (Aig.pos a1) = List.map fst (Aig.pos a2));
         let r_bdd = is_equiv (Engines.Cec.check ~engine:`Bdd a1 a2) in
         let r_sat = is_equiv (Engines.Cec.check ~engine:`Sat a1 a2) in
         r_bdd = r_sat))

let test_simple_equivalence () =
  let mk f =
    let a = Aig.create () in
    let x = Aig.add_pi a and y = Aig.add_pi a in
    Aig.add_po a "o" (f a x y);
    a
  in
  (* x & y  vs  !( !x | !y ) *)
  let a1 = mk (fun a x y -> Aig.mk_and a x y) in
  let a2 = mk (fun a x y -> Aig.lit_not (Aig.mk_or a (Aig.lit_not x) (Aig.lit_not y))) in
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool) name true (is_equiv (Engines.Cec.check ~engine:e a1 a2)))
    engines;
  (* x & y  vs  x | y: different, cex must be confirmed *)
  let a3 = mk (fun a x y -> Aig.mk_or a x y) in
  List.iter
    (fun (name, e) ->
      match Engines.Cec.check ~engine:e a1 a3 with
      | Engines.Cec.Equivalent -> Alcotest.fail (name ^ ": expected difference")
      | Engines.Cec.Different cex ->
        Alcotest.(check bool) (name ^ " cex confirmed") true
          (Engines.Cec.confirm_counterexample a1 a3 cex))
    engines

(* the three engines on a hand-written miter with a single distinguishing
   minterm: simulation will usually miss it, SAT/BDD must not *)
let test_needle_in_haystack () =
  let mk extra =
    let a = Aig.create () in
    let xs = List.init 12 (fun _ -> Aig.add_pi a) in
    let all = Aig.mk_ands a xs in
    (* f = AND of 12 inputs (one minterm), optionally OR'ed with nothing *)
    Aig.add_po a "o" (if extra then all else Aig.mk_and a all Aig.lit_true);
    a
  in
  let a1 = mk true and a2 = mk false in
  (* identical: equivalent *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "identical" true
        (is_equiv (Engines.Cec.check ~engine:e a1 a2)))
    [ `Bdd; `Sat; `Hybrid ];
  (* now break one: output stuck at 0 differs only on the all-ones input *)
  let a3 = Transform.Mutate.apply a2 (Transform.Mutate.Stuck_output "o") in
  List.iter
    (fun e ->
      match Engines.Cec.check ~engine:e a1 a3 with
      | Engines.Cec.Different cex ->
        Alcotest.(check bool) "cex is the single minterm" true
          (Array.for_all Fun.id cex.Engines.Cec.cex_pis)
      | Engines.Cec.Equivalent -> Alcotest.fail "missed the minterm")
    [ `Bdd; `Sat; `Hybrid ]

let suite =
  [ Alcotest.test_case "simple equivalence" `Quick test_simple_equivalence;
    Alcotest.test_case "needle in haystack" `Quick test_needle_in_haystack;
    prop_equiv_after_rewrite;
    prop_equiv_after_fraig;
    prop_mutant_detected;
    prop_engines_agree;
  ]

let () = Alcotest.run "engines" [ ("engines", suite) ]
